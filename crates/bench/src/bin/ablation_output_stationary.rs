//! Extension: the output-stationary-style Gemmini flow.
//!
//! Section 6.1: "In Gemmini's output stationary flow (which we do not
//! evaluate here), we would expect to see larger performance improvements."
//! The OS flow tiles the reduction dimension and re-configures per k-tile
//! (with accumulation), so far more configuration flows per launch — we
//! measure it and compare the dedup uplift against the weight-stationary
//! flow of Figure 10.
use accfg::pipeline::OptLevel;
use accfg_bench::{geomean, markdown_table, measure, run_gemmini, GemminiFlavor};
use accfg_targets::AcceleratorDescriptor;
use accfg_workloads::{gemmini_ws_ir, MatmulSpec};

fn os_measure(size: i64, level: Option<OptLevel>, label: &str) -> accfg_bench::Measurement {
    let desc = AcceleratorDescriptor::gemmini();
    // output-stationary: 64×64 output tiles with a tiled (accumulating)
    // reduction — one full gemmini.h-style invocation per 64³ block
    let tile = size.min(64);
    let spec = MatmulSpec::new((size, size, size), (tile, tile, tile)).unwrap();
    measure(&desc, &spec, gemmini_ws_ir(&desc, &spec), level, label)
}

fn main() {
    const PEAK: f64 = 512.0;
    println!("Extension: Gemmini output-stationary flow (forecast in §6.1)\n");
    let mut rows = Vec::new();
    let mut os_uplift = Vec::new();
    let mut ws_uplift = Vec::new();
    for size in [64i64, 128, 256] {
        let c = os_measure(size, None, "C");
        let a = os_measure(size, Some(OptLevel::Dedup), "accfg");
        let (pc, pa) = (c.attainable_sequential(PEAK), a.attainable_sequential(PEAK));
        os_uplift.push(pa / pc);
        let wc = run_gemmini(size, GemminiFlavor::CBaseline).attainable_sequential(PEAK);
        let wa = run_gemmini(size, GemminiFlavor::Accfg).attainable_sequential(PEAK);
        ws_uplift.push(wa / wc);
        rows.push(vec![
            size.to_string(),
            format!("{pc:.0} -> {pa:.0} ({:+.1} %)", 100.0 * (pa / pc - 1.0)),
            format!("{wc:.0} -> {wa:.0} ({:+.1} %)", 100.0 * (wa / wc - 1.0)),
        ]);
    }
    print!(
        "{}",
        markdown_table(
            &[
                "size",
                "output-stationary C -> accfg",
                "weight-stationary C -> accfg"
            ],
            &rows
        )
    );
    println!(
        "\ngeomean uplift: OS {:+.1} % vs WS {:+.1} % — the paper's forecast holds: \
         the flow with more per-launch configuration gains more from accfg.",
        100.0 * (geomean(&os_uplift) - 1.0),
        100.0 * (geomean(&ws_uplift) - 1.0),
    );
}
