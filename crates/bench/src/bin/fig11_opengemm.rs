//! Reproduces Figure 11: measured performance of tiled matmuls on the
//! OpenGeMM platform, base MLIR flow vs full accfg optimizations
//! (cycle-level simulation of the tiling loop, memory copies off).
use accfg::pipeline::OptLevel;
use accfg_bench::{geomean, markdown_table, run_opengemm, FIG11_SIZES};

/// The speedups reported in the paper's Figure 11.
const PAPER_SPEEDUP: [f64; 6] = [1.86, 2.71, 2.71, 2.05, 1.63, 1.35];

fn main() {
    println!("Figure 11: OpenGeMM tiled matmul, measured ops/cycle");
    println!("(peak = 1024 ops/cycle; concurrent configuration)\n");
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    let mut measurements = Vec::new();
    for (idx, &size) in FIG11_SIZES.iter().enumerate() {
        let base = run_opengemm(size, OptLevel::Base);
        let all = run_opengemm(size, OptLevel::All);
        let s = all.perf() / base.perf();
        speedups.push(s);
        measurements.push(base.clone());
        measurements.push(all.clone());
        rows.push(vec![
            size.to_string(),
            format!("{:.1}", base.perf()),
            format!("{:.1}", all.perf()),
            format!("x{s:.2}"),
            format!("x{:.2}", PAPER_SPEEDUP[idx]),
        ]);
    }
    print!(
        "{}",
        markdown_table(
            &[
                "size",
                "base (ops/cyc)",
                "optimized (ops/cyc)",
                "speedup (ours)",
                "speedup (paper)"
            ],
            &rows,
        )
    );
    println!(
        "\ngeomean speedup: x{:.2} (paper: x{:.2})",
        geomean(&speedups),
        geomean(&PAPER_SPEEDUP)
    );
    if let Ok(path) = accfg_bench::csv::write_csv("fig11_opengemm", &measurements) {
        println!("raw data: {}", path.display());
    }
}
