//! Reproduces Table 1: the configuration fields of the Gemmini
//! weight-stationary matmul sequence, with meanings and bit widths.
use accfg_targets::AcceleratorDescriptor;

fn main() {
    let desc = AcceleratorDescriptor::gemmini();
    println!("Table 1: fields of the gemmini_loop_ws-style sequence");
    println!("(C = A·B + D weight-stationary matrix multiplication)\n");
    print!("{}", desc.field_table_markdown());
    println!(
        "\nTotal architectural configuration state: {} bits ({} bytes)",
        desc.total_config_bits(),
        desc.total_config_bits().div_ceil(8),
    );
    println!(
        "Configuration interface: 16 bytes per RoCC command, \
         launch-semantic final command (funct {})",
        match desc.style {
            accfg_targets::ConfigStyle::RoccPairs { launch_funct } => launch_funct,
            accfg_targets::ConfigStyle::Csr => unreachable!("gemmini is RoCC"),
        }
    );
}
