//! Reproduces Figure 2 with real data: the execution timeline of a typical
//! host + accelerator program, before and after the compiler optimizations.
//!
//! Legend (as in the paper): `E` host execution, `C` host configures,
//! `#` accelerator execution, `.` idle/waiting.
use accfg::pipeline::{pipeline, OptLevel};
use accfg::AccelFilter;
use accfg_sim::{AccelSim, Activity, Machine, Timeline};
use accfg_targets::{compile, AcceleratorDescriptor};
use accfg_workloads::{fill_inputs, matmul_ir, MatmulLayout, MatmulSpec};

fn trace(level: OptLevel) -> (Timeline, accfg_sim::Counters) {
    let desc = AcceleratorDescriptor::opengemm();
    let spec = MatmulSpec::opengemm_paper(32).unwrap();
    let mut m = matmul_ir(&desc, &spec);
    pipeline(level, AccelFilter::All).run(&mut m).unwrap();
    let layout = MatmulLayout::at(0x1000, &spec);
    let prog = compile(
        &m,
        "matmul",
        &desc,
        &[layout.a_addr, layout.b_addr, layout.c_addr],
    )
    .unwrap();
    let mut machine = Machine::new(
        desc.host.clone(),
        AccelSim::new(desc.accel.clone()),
        layout.end as usize,
    );
    fill_inputs(&mut machine.mem, &spec, &layout, 2).unwrap();
    let mut timeline = Timeline::new();
    let counters = machine
        .run_traced(&prog, 10_000_000, &mut timeline)
        .unwrap();
    (timeline, counters)
}

fn main() {
    println!("Figure 2: execution timeline (32x32x32 tiled matmul on OpenGeMM)");
    println!("E host execution   C host configures   # accelerator execution   . waiting\n");
    for (title, level) in [
        ("Unoptimized", OptLevel::Base),
        (
            "Proposed Compiler Optimizations (dedup + overlap)",
            OptLevel::All,
        ),
    ] {
        let (timeline, counters) = trace(level);
        println!("-- {title} --");
        print!("{}", timeline.render(100));
        println!(
            "config {} cyc, calc {} cyc, stalled {} cyc, accel busy {} cyc -> total {} cycles\n",
            timeline.cycles_of(Activity::Config),
            timeline.cycles_of(Activity::Calc),
            timeline.cycles_of(Activity::Stall),
            timeline.cycles_of(Activity::Busy),
            counters.cycles,
        );
    }
    println!("The optimized timeline shows the paper's Figure 2 effect: configuration");
    println!("shrinks (dedup) and what remains hides under accelerator execution (overlap).");
}
