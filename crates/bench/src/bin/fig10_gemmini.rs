//! Reproduces Figure 10: attainable performance of Gemmini's
//! weight-stationary tiled matmul, C baseline vs the accfg flow, via the
//! Equation 3 proxy over traced instruction counts (the paper's method).
use accfg_bench::{geomean, markdown_table, run_gemmini, GemminiFlavor, FIG10_SIZES};

/// The values read off the paper's Figure 10, for comparison.
const PAPER_C: [f64; 5] = [137.0, 379.0, 419.0, 482.0, 500.0];
const PAPER_ACCFG: [f64; 5] = [171.0, 406.0, 482.0, 506.0, 511.0];

fn main() {
    const PEAK: f64 = 512.0;
    println!("Figure 10: Gemmini weight-stationary tiled matmul");
    println!("(attainable ops/cycle via Eq. 3 from traced counters; peak = {PEAK})\n");
    let mut rows = Vec::new();
    let mut uplifts = Vec::new();
    let mut measurements = Vec::new();
    for (idx, &size) in FIG10_SIZES.iter().enumerate() {
        let c = run_gemmini(size, GemminiFlavor::CBaseline);
        let a = run_gemmini(size, GemminiFlavor::Accfg);
        let (pc, pa) = (c.attainable_sequential(PEAK), a.attainable_sequential(PEAK));
        uplifts.push(pa / pc);
        measurements.push(c.clone());
        measurements.push(a.clone());
        rows.push(vec![
            size.to_string(),
            format!("{pc:.0}"),
            format!("{pa:.0}"),
            format!("{:+.1} %", 100.0 * (pa / pc - 1.0)),
            format!("{:.0}", PAPER_C[idx]),
            format!("{:.0}", PAPER_ACCFG[idx]),
            format!("{:+.1} %", 100.0 * (PAPER_ACCFG[idx] / PAPER_C[idx] - 1.0)),
        ]);
    }
    print!(
        "{}",
        markdown_table(
            &[
                "size",
                "C (ours)",
                "accfg (ours)",
                "uplift (ours)",
                "C (paper)",
                "accfg (paper)",
                "uplift (paper)"
            ],
            &rows,
        )
    );
    let ours = 100.0 * (geomean(&uplifts) - 1.0);
    let paper: Vec<f64> = PAPER_ACCFG
        .iter()
        .zip(PAPER_C)
        .map(|(a, c)| a / c)
        .collect();
    println!(
        "\ngeomean uplift: {ours:+.1} % (paper: {:+.1} %)",
        100.0 * (geomean(&paper) - 1.0)
    );
    if let Ok(path) = accfg_bench::csv::write_csv("fig10_gemmini", &measurements) {
        println!("raw data: {}", path.display());
    }
}
