//! Reproduces Figure 4: the configuration roofline, with the sequential and
//! concurrent curves, the knee point, and the A/B/C example workloads.
use accfg_roofline::{render, Bound, ConfigRoofline, PlotConfig, Series};

fn main() {
    let r = ConfigRoofline {
        peak: 512.0,
        config_bandwidth: 16.0 / 9.0,
    };
    println!(
        "Figure 4: configuration roofline (P_peak = {} ops/cycle, BW_config = {:.2} B/cycle)",
        r.peak, r.config_bandwidth
    );
    println!("knee at I_OC = {:.1} ops/byte\n", r.knee());

    let seq = |x: f64| r.attainable_sequential(x);
    let conc = |x: f64| r.attainable_concurrent(x);
    let cfg = PlotConfig {
        x_range: (4.0, 65536.0),
        y_range: (4.0, 1024.0),
        ..Default::default()
    };
    // the three example workloads of Figure 4
    let (a, b, c) = (r.knee() * 16.0, r.knee() / 8.0, r.knee());
    let series = [
        Series {
            label: format!("A: compute bound (I_OC = {a:.0})"),
            marker: 'A',
            points: vec![(a, r.attainable_sequential(a))],
        },
        Series {
            label: format!("B: configuration bound (I_OC = {b:.0})"),
            marker: 'B',
            points: vec![(b, r.attainable_concurrent(b))],
        },
        Series {
            label: format!("C: knee point (I_OC = {c:.0})"),
            marker: 'C',
            points: vec![(c, r.attainable_concurrent(c))],
        },
    ];
    println!(
        "{}",
        render(
            &cfg,
            &[
                ("sequential roofline (Eq. 3)", '.', &seq),
                ("concurrent roofline (Eq. 2)", '-', &conc),
            ],
            &series,
        )
    );
    for (label, i_oc) in [("A", a), ("B", b), ("C", c)] {
        println!(
            "workload {label}: I_OC = {i_oc:8.1} ops/byte -> {:?} bound; \
             P_seq = {:6.1}, P_conc = {:6.1} ops/cycle",
            r.bound(i_oc),
            r.attainable_sequential(i_oc),
            r.attainable_concurrent(i_oc),
        );
    }
    let knee = r.knee();
    assert_eq!(r.bound(knee / 2.0), Bound::Configuration);
    assert_eq!(r.bound(knee * 2.0), Bound::Compute);
    println!(
        "\nAt the knee, sequential configuration attains exactly half of \
         concurrent: {:.3}",
        r.attainable_sequential(knee) / r.attainable_concurrent(knee)
    );
}
