//! Reproduces Figure 12: the per-pass ablation plotted on OpenGeMM's
//! configuration roofline. Deduplication moves measurements up and to the
//! right (higher I_OC); overlap moves them up; both together give the
//! largest gain.
use accfg::pipeline::OptLevel;
use accfg_bench::{run_opengemm, FIG12_SIZES};
use accfg_roofline::{render, ConfigRoofline, PlotConfig, Series};

fn main() {
    // theoretical configuration bandwidth of the platform: 4 payload bytes
    // per single-cycle CSR write, needing ~2 instructions per field value
    let roofline = ConfigRoofline {
        peak: 1024.0,
        config_bandwidth: 4.0 / 2.0,
    };
    println!("Figure 12: measurements on OpenGeMM's configuration roofline");
    println!(
        "(P_peak = {} ops/cycle, BW_config = {} B/cycle, knee at I_OC = {})\n",
        roofline.peak,
        roofline.config_bandwidth,
        roofline.knee()
    );

    let mut series = Vec::new();
    let markers = [
        ('b', OptLevel::Base),
        ('d', OptLevel::Dedup),
        ('o', OptLevel::Overlap),
        ('a', OptLevel::All),
    ];
    println!("| size | level | I_OC (ops/B) | P (ops/cyc) |");
    println!("|---|---|---|---|");
    for (marker, level) in markers {
        let mut points = Vec::new();
        for &size in &FIG12_SIZES {
            let m = run_opengemm(size, level);
            println!(
                "| {size} | {} | {:.1} | {:.1} |",
                level.label(),
                m.i_oc(),
                m.perf()
            );
            points.push((m.i_oc(), m.perf()));
        }
        series.push(Series {
            label: level.label().to_string(),
            marker,
            points,
        });
    }
    let seq = |x: f64| roofline.attainable_sequential(x);
    let conc = |x: f64| roofline.attainable_concurrent(x);
    let cfg = PlotConfig {
        x_range: (32.0, 16384.0),
        y_range: (64.0, 2048.0),
        ..Default::default()
    };
    println!();
    println!(
        "{}",
        render(
            &cfg,
            &[
                ("sequential roofline", '.', &seq),
                ("concurrent roofline", '-', &conc)
            ],
            &series,
        )
    );
    println!("arrow 1 (dedup):   up and to the right — fewer configuration bytes");
    println!("arrow 2 (overlap): straight up — same bytes, hidden behind execution");
    println!("arrow 3 (all):     both effects compose");
}
