//! Extension: partial setup motion (Section 5.5's unimplemented idea).
//!
//! When a setup's inputs mix pure and impure producers, the paper's overlap
//! rewrite must give up entirely ("a partial move of the setup operation
//! could still be performed, although this is not implemented in our
//! current infrastructure"). This repository implements that partial move:
//! the setup is split and the pure half still overlaps.
//!
//! The harness counts, at the IR level, how many configuration field writes
//! end up hidden behind accelerator execution with (a) the paper's
//! full-or-nothing rewrite and (b) partial motion.
use accfg::{interpret, OverlapInBlock};
use accfg_ir::{print_module, Effects, FuncBuilder, Module, Opcode, Pass, Type};

/// An inference loop where each invocation's `threshold` field comes from an
/// impure sensor read, while addresses and sizes are pure.
fn workload() -> Module {
    let mut m = Module::new();
    let (mut b, args) = FuncBuilder::new_func(&mut m, "kernel", vec![Type::I64]);
    let mut prev = None;
    for layer in 0..3i64 {
        let off = b.const_index(layer * 0x100);
        let addr = b.addi(args[0], off); // pure
        let sensor = b.opaque(
            "read_adc",
            vec![],
            vec![Type::I64],
            Some(Effects::None), // leaves accel state alone, but impure
        );
        let fields = [("addr", addr), ("threshold", sensor[0])];
        let s = match prev {
            None => b.setup("acc", &fields),
            Some(p) => b.setup_from("acc", p, &fields),
        };
        let t = b.launch("acc", s);
        b.await_token("acc", t);
        prev = Some(s);
    }
    b.ret(vec![]);
    m
}

/// Counts setup field-writes that sit above (before) the await protecting
/// their input state — i.e. writes that overlap accelerator execution.
fn overlapped_writes(m: &Module) -> usize {
    let func = m.func_by_name("kernel").unwrap();
    let block = m.body_block(func, 0);
    let ops = m.block_ops(block);
    let mut count = 0;
    let mut awaits_seen = 0;
    let mut launches_seen = 0;
    for op in ops {
        match m.op(op).opcode {
            Opcode::AccfgAwait => awaits_seen += 1,
            Opcode::AccfgLaunch => launches_seen += 1,
            Opcode::AccfgSetup if launches_seen > awaits_seen => {
                count += accfg::setup_fields(m, op).len();
            }
            _ => {}
        }
    }
    count
}

fn main() {
    let reference = interpret(&workload(), "kernel", &[0x1000], 100_000).unwrap();

    let mut fullonly = workload();
    OverlapInBlock::default().run(&mut fullonly);
    let full_hidden = overlapped_writes(&fullonly);

    let mut partial = workload();
    OverlapInBlock::with_partial_motion().run(&mut partial);
    let partial_hidden = overlapped_writes(&partial);

    for (m, label) in [(&fullonly, "full-or-nothing"), (&partial, "partial motion")] {
        let t = interpret(m, "kernel", &[0x1000], 100_000).unwrap();
        assert_eq!(
            t.launches, reference.launches,
            "{label} must preserve semantics"
        );
    }

    println!("Extension: partial setup motion (Section 5.5 future work)\n");
    println!("3-layer kernel; each setup = 1 pure field (addr) + 1 impure field (threshold)\n");
    println!("field writes hidden behind accelerator execution:");
    println!("  paper's rewrite (full move or nothing): {full_hidden}");
    println!("  with partial setup motion:              {partial_hidden}");
    println!(
        "\noptimized IR with partial motion:\n{}",
        print_module(&partial)
    );
}
