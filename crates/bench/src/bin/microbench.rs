//! Deterministic micro-benchmarks, cycle-counted on the simulator clock.
//!
//! The earlier criterion benches measured host wall-clock time, which
//! needed the crates.io `criterion` crate (unavailable offline) and made
//! every number machine-dependent. Everything this workspace cares about
//! is *simulated* cost, which the simulator counts exactly — so these
//! micro-benches report simulated cycles and instruction counts instead:
//! byte-identical on every machine and every run, and diffable in CI.
//!
//! Suites:
//!
//! - `cosimulation` — end-to-end co-simulation cost of the OpenGeMM tiled
//!   matmul across sizes (the old `benches/simulator.rs` subject);
//! - `host_cpi_sensitivity` — Gemmini total cycles and effective
//!   configuration bandwidth as the host CPI scales (the knee-shifting
//!   ablation);
//! - `pipeline_levels` — what each optimization level of the accfg
//!   pipeline buys on the simulated program (the old `benches/passes.rs`
//!   and `benches/figures.rs` subjects, measured in simulated cycles);
//! - `timing_model` — the identity vs. reference [`TimingModel`]: what
//!   shared-bandwidth contention and DVFS cost a back-to-back dispatch
//!   pair, per platform;
//! - `dvfs_sensitivity` — the reference OpenGeMM DVFS table against
//!   swept boost/cooldown thresholds: how the warm/boost ramp points and
//!   the cooldown window move the launch-state mix and total cycles of
//!   one tiled matmul (the table the `thermal` policy's heat mirror and
//!   the frequency-keyed EWMA rows key on).
//!
//! Run with `cargo run --release -p accfg-bench --bin microbench`.
//!
//! [`TimingModel`]: accfg_sim::TimingModel

use accfg::pipeline::{pipeline, OptLevel};
use accfg_bench::markdown_table;
use accfg_sim::{AccelSim, Counters, DvfsParams, HostModel, Machine};
use accfg_targets::{compile, AcceleratorDescriptor};
use accfg_workloads::{
    check_result, fill_inputs, gemmini_ws_ir, matmul_ir, MatmulLayout, MatmulSpec,
};

/// Compiles `desc`'s tiled matmul at `level` and runs it on a fresh
/// machine charged under the descriptor's timing model, functionally
/// checked.
fn run_once(desc: &AcceleratorDescriptor, spec: &MatmulSpec, level: OptLevel) -> Counters {
    let mut module = matmul_ir(desc, spec);
    pipeline(level, desc.overlap_filter())
        .run(&mut module)
        .expect("pipeline runs");
    let layout = MatmulLayout::at(0x1000, spec);
    let prog = compile(
        &module,
        "matmul",
        desc,
        &[layout.a_addr, layout.b_addr, layout.c_addr],
    )
    .expect("lowering succeeds");
    let mut machine = Machine::new(
        desc.host.clone(),
        AccelSim::with_timing(desc.accel.clone(), desc.timing),
        layout.end as usize,
    );
    fill_inputs(&mut machine.mem, spec, &layout, 0x5EED).expect("inputs fit");
    let counters = machine.run(&prog, 1_000_000_000).expect("simulation");
    check_result(&machine.mem, spec, &layout).expect("functional result");
    counters
}

fn cosimulation() {
    println!("== cosimulation: OpenGeMM tiled matmul, OptLevel::All ==");
    let desc = AcceleratorDescriptor::opengemm();
    let rows: Vec<Vec<String>> = [16i64, 32, 64]
        .iter()
        .map(|&size| {
            let spec = MatmulSpec::opengemm_paper(size).expect("valid size");
            let c = run_once(&desc, &spec, OptLevel::All);
            // the simulator clock is exact: a second run must agree
            assert_eq!(c, run_once(&desc, &spec, OptLevel::All), "nondeterminism");
            vec![
                size.to_string(),
                c.cycles.to_string(),
                c.insts_total.to_string(),
                c.config_cycles.to_string(),
                c.stall_cycles.to_string(),
                format!("{:.2}", c.ops_per_cycle(2 * (size * size * size) as u64)),
            ]
        })
        .collect();
    print!(
        "{}",
        markdown_table(
            &[
                "size",
                "cycles",
                "insts",
                "config cyc",
                "stall cyc",
                "ops/cyc"
            ],
            &rows,
        )
    );
    println!();
}

fn host_cpi_sensitivity() {
    println!("== host_cpi_sensitivity: Gemmini WS flow, OptLevel::Dedup ==");
    let rows: Vec<Vec<String>> = [1u64, 3, 5]
        .iter()
        .map(|&cpi| {
            let mut desc = AcceleratorDescriptor::gemmini();
            desc.host = HostModel {
                name: format!("rocket-cpi{cpi}"),
                alu: cpi,
                li: cpi,
                mem: cpi,
                branch: cpi,
                jump: cpi,
                csr_write: cpi,
                rocc: cpi,
                launch: cpi,
                poll: cpi,
            };
            let spec = MatmulSpec::gemmini_paper(64).expect("valid size");
            let mut module = gemmini_ws_ir(&desc, &spec);
            pipeline(OptLevel::Dedup, desc.overlap_filter())
                .run(&mut module)
                .expect("pipeline runs");
            let layout = MatmulLayout::at(0x1000, &spec);
            let prog = compile(
                &module,
                "matmul",
                &desc,
                &[layout.a_addr, layout.b_addr, layout.c_addr],
            )
            .expect("lowering succeeds");
            let mut machine = Machine::new(
                desc.host.clone(),
                AccelSim::new(desc.accel.clone()),
                layout.end as usize,
            );
            fill_inputs(&mut machine.mem, &spec, &layout, 0x5EED).expect("inputs fit");
            let c = machine.run(&prog, 1_000_000_000).expect("simulation");
            check_result(&machine.mem, &spec, &layout).expect("functional result");
            vec![
                cpi.to_string(),
                c.cycles.to_string(),
                c.config_cycles.to_string(),
                format!("{:.3}", c.effective_config_bandwidth()),
            ]
        })
        .collect();
    print!(
        "{}",
        markdown_table(
            &["host CPI", "cycles", "config cyc", "BW_eff (B/cyc)"],
            &rows
        )
    );
    println!();
}

fn pipeline_levels() {
    println!("== pipeline_levels: OpenGeMM 64³, simulated cost per opt level ==");
    let desc = AcceleratorDescriptor::opengemm();
    let spec = MatmulSpec::opengemm_paper(64).expect("valid size");
    let base_cycles = run_once(&desc, &spec, OptLevel::Base).cycles;
    let rows: Vec<Vec<String>> = [
        OptLevel::Base,
        OptLevel::Dedup,
        OptLevel::Overlap,
        OptLevel::All,
    ]
    .iter()
    .map(|&level| {
        let c = run_once(&desc, &spec, level);
        // dedup-only and overlap-only are not ordered against each
        // other, but no level may lose to the unoptimized baseline
        assert!(c.cycles <= base_cycles, "{level:?} regressed past Base");
        vec![
            level.label().to_string(),
            c.cycles.to_string(),
            c.insts_config.to_string(),
            c.config_bytes.to_string(),
            c.overlap_cycles.to_string(),
        ]
    })
    .collect();
    print!(
        "{}",
        markdown_table(
            &[
                "level",
                "cycles",
                "config insts",
                "config bytes",
                "overlap cyc"
            ],
            &rows,
        )
    );
    println!();
}

fn timing_model() {
    println!("== timing_model: identity vs reference contention + DVFS ==");
    let mut rows = Vec::new();
    for base in [
        AcceleratorDescriptor::gemmini(),
        AcceleratorDescriptor::opengemm(),
    ] {
        let spec = match base.name.as_str() {
            "gemmini" => MatmulSpec::gemmini_paper(64),
            _ => MatmulSpec::opengemm_paper(32),
        }
        .expect("valid size");
        let timed = base.clone().with_reference_timing();
        let ident = run_once(&base, &spec, OptLevel::All);
        let rich = run_once(&timed, &spec, OptLevel::All);
        assert_eq!(ident.contention_cycles, 0);
        rows.push(vec![
            base.name.clone(),
            ident.cycles.to_string(),
            rich.cycles.to_string(),
            rich.contention_cycles.to_string(),
            format!(
                "{}/{}/{}",
                rich.freq_launches[0], rich.freq_launches[1], rich.freq_launches[2]
            ),
        ]);
    }
    print!(
        "{}",
        markdown_table(
            &[
                "platform",
                "identity cyc",
                "timed cyc",
                "cont cyc",
                "freq c/w/b"
            ],
            &rows,
        )
    );
    println!();
}

fn dvfs_sensitivity() {
    println!("== dvfs_sensitivity: OpenGeMM 64³, swept boost/cooldown thresholds ==");
    let reference = AcceleratorDescriptor::opengemm()
        .with_reference_timing()
        .timing
        .dvfs
        .expect("reference timing carries a DVFS table");
    // the reference table plus one-knob perturbations: ramp points moved
    // both ways, and a cooldown window short enough to fire in the
    // config-write gaps *between* launches of a single program
    let variants: [(&str, DvfsParams); 4] = [
        ("reference", reference),
        (
            "eager-ramp",
            DvfsParams {
                warm_busy_cycles: reference.warm_busy_cycles / 4,
                boost_busy_cycles: reference.boost_busy_cycles / 4,
                ..reference
            },
        ),
        (
            "lazy-ramp",
            DvfsParams {
                warm_busy_cycles: reference.warm_busy_cycles * 4,
                boost_busy_cycles: reference.boost_busy_cycles * 4,
                ..reference
            },
        ),
        (
            "skittish-cooldown",
            DvfsParams {
                cooldown_idle_cycles: 4,
                ..reference
            },
        ),
    ];
    let spec = MatmulSpec::opengemm_paper(64).expect("valid size");
    let runs: Vec<(&str, Counters)> = variants
        .iter()
        .map(|&(label, dvfs)| {
            let mut desc = AcceleratorDescriptor::opengemm().with_reference_timing();
            desc.timing.dvfs = Some(dvfs);
            let c = run_once(&desc, &spec, OptLevel::All);
            assert_eq!(c, run_once(&desc, &spec, OptLevel::All), "nondeterminism");
            (label, c)
        })
        .collect();
    let launches = |c: &Counters| c.freq_launches.iter().sum::<u64>();
    let boosts = |c: &Counters| c.freq_launches[2];
    let reference_run = &runs[0].1;
    for (label, c) in &runs {
        // the table changes when launches run, never how many there are
        assert_eq!(
            launches(c),
            launches(reference_run),
            "{label}: launch count drifted"
        );
    }
    // lower ramp points can only reach boost sooner, higher ones later,
    // and a hair-trigger cooldown can only lose heat between launches
    assert!(boosts(&runs[1].1) >= boosts(reference_run), "eager-ramp");
    assert!(boosts(&runs[2].1) <= boosts(reference_run), "lazy-ramp");
    assert!(
        runs[3].1.freq_launches[0] >= reference_run.freq_launches[0],
        "skittish-cooldown must not launch colder than the reference"
    );
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|(label, c)| {
            vec![
                label.to_string(),
                c.cycles.to_string(),
                c.contention_cycles.to_string(),
                format!(
                    "{}/{}/{}",
                    c.freq_launches[0], c.freq_launches[1], c.freq_launches[2]
                ),
            ]
        })
        .collect();
    print!(
        "{}",
        markdown_table(&["variant", "cycles", "cont cyc", "freq c/w/b"], &rows)
    );
    println!();
}

fn main() {
    println!("microbench: deterministic simulated-cycle micro-benchmarks\n");
    cosimulation();
    host_cpi_sensitivity();
    pipeline_levels();
    timing_model();
    dvfs_sensitivity();
}
