//! Reproduces Figure 3: the classical processor roofline model, showing the
//! memory-bound and compute-bound regions.
use accfg_roofline::{render, PlotConfig, ProcessorRoofline, Series};

fn main() {
    let r = ProcessorRoofline {
        peak: 512.0,
        memory_bandwidth: 32.0,
    };
    println!(
        "Figure 3: processor roofline (P_peak = {} ops/cycle, BW_mem = {} B/cycle)",
        r.peak, r.memory_bandwidth
    );
    println!("knee at I_op = {} ops/byte\n", r.knee());
    let att = |x: f64| r.attainable(x);
    let cfg = PlotConfig {
        x_range: (0.25, 4096.0),
        y_range: (4.0, 1024.0),
        x_label: "I_operational (ops/byte)".into(),
        y_label: "P (ops/cycle)".into(),
        ..Default::default()
    };
    let series = [
        Series {
            label: "memory-bound workload".into(),
            marker: 'M',
            points: vec![(2.0, r.attainable(2.0))],
        },
        Series {
            label: "compute-bound workload".into(),
            marker: 'C',
            points: vec![(512.0, r.attainable(512.0))],
        },
    ];
    println!(
        "{}",
        render(&cfg, &[("roofline (Eq. 1)", '-', &att)], &series)
    );
}
