//! The deterministic serving-knob autotuner.
//!
//! Searches the serving knob space — routing policy, `load_slack`,
//! `batch_cutoff`, `max_batch`, and (on timing-model pools) the thermal
//! knobs `power_cap` and DVFS table variant — per stream, using capped-run
//! racing plus surrogate-ordered local refinement (see `accfg_bench::tune`).
//! Tuning runs on the *seed* streams only; the winning configuration is
//! then transferred unchanged to the *held-out* streams and reported there,
//! the standard guard against overfitting a tuner to its own benchmark.
//!
//! Every serve is a deterministic simulation, so the emitted `TUNED.json`
//! is byte-identical across runs and machines — CI re-runs the tuner and
//! `cmp`s the artifact. `serve_bench --tuned TUNED.json` replays the tuned
//! rows next to the stock policies.
//!
//! ```text
//! cargo run --release -p accfg-bench --bin autotune [-- options]
//!   --requests N        requests per evaluation serve (default 4000)
//!   --out PATH          output table (default TUNED.json)
//!   --refine-rounds N   local-refinement rounds after the grid (default 2)
//!   --no-racing         full-length evaluations (same winner, more cycles)
//!   --tune-streams A,B  seed streams to tune on (default mixed,bursty)
//!   --held-out A,B      held-out streams to report (default contention,hetero)
//! ```
//!
//! There is deliberately no `--store` flag: candidate serves are capped and
//! may abort, and an aborted serve must never flush partial EWMA state to a
//! warm-start store. The engine already guarantees aborted serves persist
//! nothing; the tuner additionally never opens a store at all.

use accfg_bench::tune::{
    evaluate, knob_space, render_table, tune_stream, Eval, KnobConfig, Objective, StreamEntry,
    TuneOptions,
};
use accfg_bench::{markdown_table, streams};
use accfg_runtime::PoolConfig;
use accfg_workloads::TrafficRequest;

/// Requests per evaluation serve in the default invocation.
const DEFAULT_REQUESTS: usize = 4_000;
/// The committed artifact name.
const DEFAULT_OUT: &str = "TUNED.json";
/// The default seed streams (tuned on).
const DEFAULT_TUNE: &str = "mixed,bursty";
/// The default held-out streams (reported only).
const DEFAULT_HELD_OUT: &str = "contention,hetero";

fn resolve(name: &str, requests: usize) -> (Vec<TrafficRequest>, PoolConfig) {
    streams::named_stream(name, requests).unwrap_or_else(|| {
        panic!(
            "unknown or untunable stream `{name}` \
             (tunable: mixed, shape_heavy, bursty, hetero, contention)"
        )
    })
}

fn must_complete(eval: Eval) -> Objective {
    match eval {
        Eval::Complete(obj) => obj,
        Eval::Aborted => unreachable!("unbudgeted serves never abort"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut requests = DEFAULT_REQUESTS;
    let mut out_path = DEFAULT_OUT.to_string();
    let mut opts = TuneOptions::default();
    let mut tune_names = DEFAULT_TUNE.to_string();
    let mut held_out_names = DEFAULT_HELD_OUT.to_string();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--requests" => {
                requests = value(i).parse().expect("--requests takes a count");
                i += 2;
            }
            "--out" => {
                out_path = value(i).clone();
                i += 2;
            }
            "--refine-rounds" => {
                opts.refine_rounds = value(i).parse().expect("--refine-rounds takes a count");
                i += 2;
            }
            "--no-racing" => {
                opts.racing = false;
                i += 1;
            }
            "--tune-streams" => {
                tune_names = value(i).clone();
                i += 2;
            }
            "--held-out" => {
                held_out_names = value(i).clone();
                i += 2;
            }
            "--store" => panic!(
                "autotune does not support --store: candidate serves are capped and may \
                 abort, and an aborted serve must not feed a warm-start store"
            ),
            other => panic!(
                "unknown argument `{other}` (supported: --requests, --out, \
                 --refine-rounds, --no-racing, --tune-streams, --held-out)"
            ),
        }
    }
    let tune_streams: Vec<&str> = tune_names.split(',').filter(|s| !s.is_empty()).collect();
    let held_out: Vec<&str> = held_out_names
        .split(',')
        .filter(|s| !s.is_empty())
        .collect();
    assert!(
        !tune_streams.is_empty(),
        "--tune-streams must name a stream"
    );

    // Non-default invocations must not clobber the committed default table.
    let defaults = TuneOptions::default();
    assert!(
        (requests == DEFAULT_REQUESTS
            && opts.racing == defaults.racing
            && opts.refine_rounds == defaults.refine_rounds
            && tune_names == DEFAULT_TUNE
            && held_out_names == DEFAULT_HELD_OUT)
            || std::path::Path::new(&out_path).file_name()
                != std::path::Path::new(DEFAULT_OUT).file_name(),
        "refusing to overwrite the default {DEFAULT_OUT} with a non-default \
         invocation; pass --out to write elsewhere"
    );

    // Tune every seed stream independently.
    let mut entries: Vec<StreamEntry> = Vec::new();
    let mut seeds = Vec::new();
    for name in &tune_streams {
        let (stream, pool) = resolve(name, requests);
        let thermal = pool
            .groups
            .iter()
            .any(|g| g.members.iter().any(|m| !m.timing.is_identity()));
        let space = knob_space(thermal);
        eprintln!(
            "tuning `{name}`: {} candidates ({} requests per serve, racing {})",
            space.len(),
            requests,
            if opts.racing { "on" } else { "off" }
        );
        let result = tune_stream(name, &pool, &stream, &space, &opts);
        eprintln!(
            "  {} evaluations ({} capped aborts): default p99 {} writes {} -> tuned p99 {} writes {} [{}]",
            result.evaluations,
            result.aborts,
            result.default_objective.p99,
            result.default_objective.setup_writes,
            result.objective.p99,
            result.objective.setup_writes,
            if result.improved { "improved" } else { "no dominating config" },
        );
        entries.push(StreamEntry {
            name: (*name).to_string(),
            role: "seed",
            source: "search".to_string(),
            knobs: result.knobs,
            default: result.default_objective,
            tuned: result.objective,
            evaluations: result.evaluations,
            aborts: result.aborts,
        });
        seeds.push((pool, stream, result));
    }

    // Pick the transfer configuration for the held-out streams using seed
    // data only: among the per-stream winners, the one that weakly
    // dominates the default on *every* seed stream, by largest summed
    // relative improvement. If none qualifies the defaults transfer
    // (zero-delta, trivially regression-free).
    let mut transfer_source = "default".to_string();
    let mut transfer = KnobConfig::default().canonical();
    let mut transfer_score = 0.0f64;
    let mut candidates: Vec<(&str, KnobConfig)> = Vec::new();
    for (_, _, result) in &seeds {
        if result.improved && !candidates.iter().any(|(_, k)| *k == result.knobs) {
            candidates.push((&result.stream, result.knobs));
        }
    }
    for (src, knobs) in candidates {
        let mut qualified = true;
        let mut score = 0.0f64;
        for (pool, stream, result) in &seeds {
            let obj = must_complete(evaluate(pool, stream, &knobs, None));
            let default = result.default_objective;
            if obj.p99 > default.p99 || obj.setup_writes > default.setup_writes {
                qualified = false;
                break;
            }
            score += (default.p99 - obj.p99) as f64 / default.p99.max(1) as f64
                + (default.setup_writes - obj.setup_writes) as f64
                    / default.setup_writes.max(1) as f64;
        }
        if qualified && score > transfer_score {
            transfer_source = src.to_string();
            transfer = knobs;
            transfer_score = score;
        }
    }
    eprintln!(
        "transfer config from `{transfer_source}`: {}",
        transfer.to_json()
    );

    // Report the held-out streams under the transferred configuration.
    // A regression here means the tuner overfit its seed streams; since
    // every serve is deterministic this is a hard failure, not a sample.
    for name in &held_out {
        let (stream, pool) = resolve(name, requests);
        let default = must_complete(evaluate(
            &pool,
            &stream,
            &KnobConfig::default().canonical(),
            None,
        ));
        let tuned = must_complete(evaluate(&pool, &stream, &transfer, None));
        assert!(
            tuned.p99 <= default.p99 && tuned.setup_writes <= default.setup_writes,
            "held-out stream `{name}` regressed under the transferred config: \
             default p99 {} writes {} -> tuned p99 {} writes {}",
            default.p99,
            default.setup_writes,
            tuned.p99,
            tuned.setup_writes
        );
        entries.push(StreamEntry {
            name: (*name).to_string(),
            role: "held_out",
            source: transfer_source.clone(),
            knobs: transfer,
            default,
            tuned,
            evaluations: 0,
            aborts: 0,
        });
    }

    let table = render_table(requests, &opts, &entries);
    std::fs::write(&out_path, &table).expect("write tuned table");

    let rows: Vec<Vec<String>> = entries
        .iter()
        .map(|e| {
            vec![
                e.name.clone(),
                e.role.to_string(),
                e.knobs.policy.label().to_string(),
                format!(
                    "{}/{}",
                    e.knobs.load_slack,
                    e.knobs
                        .batch_cutoff
                        .map_or("none".to_string(), |c| c.to_string())
                ),
                e.knobs.max_batch.to_string(),
                format!("{} -> {}", e.default.p99, e.tuned.p99),
                format!("{} -> {}", e.default.setup_writes, e.tuned.setup_writes),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &[
                "stream",
                "role",
                "policy",
                "slack/cutoff",
                "batch",
                "p99 default -> tuned",
                "writes default -> tuned",
            ],
            &rows
        )
    );
    println!("tuned table written to {out_path}");
}
