//! The canonical benchmark streams and pools, shared by `serve_bench`,
//! `autotune`, and the integration tests.
//!
//! Every builder here is deterministic — fixed seeds, fixed gaps — so two
//! binaries (or a binary and a test) constructing "the `mixed` stream at
//! 4000 requests" get byte-identical request sequences. Centralizing the
//! constants is what makes `autotune`'s tuned-config table directly
//! consumable by `serve_bench --tuned`: both sides agree on what each
//! stream name means at every request count.

use accfg_runtime::PoolConfig;
use accfg_targets::AcceleratorDescriptor;
use accfg_workloads::{
    mixed_platform_classes, mixed_serving_classes, shape_heavy_classes, BurstyConfig,
    ClosedLoopConfig, TrafficConfig, TrafficRequest,
};

/// The uniform evaluation pool: both base platforms, two workers each.
pub fn uniform_pool() -> PoolConfig {
    PoolConfig::new(vec![
        AcceleratorDescriptor::gemmini(),
        AcceleratorDescriptor::opengemm(),
    ])
    .with_workers_per_accelerator(2)
}

/// The heterogeneous pool: same capacity as [`uniform_pool`], but each
/// family pairs its base platform with a differently provisioned variant.
pub fn hetero_pool() -> PoolConfig {
    PoolConfig::new(vec![
        AcceleratorDescriptor::gemmini(),
        AcceleratorDescriptor::opengemm(),
    ])
    .with_workers_per_accelerator(2)
    .with_variant("gemmini", AcceleratorDescriptor::gemmini_turbo())
    .with_variant("opengemm", AcceleratorDescriptor::opengemm_lite())
}

/// The timing-model pool: the two base platforms with their reference
/// contention budgets and DVFS tables enabled — same capacity as the
/// uniform pool, but dispatch cost now depends on each worker's load.
pub fn contention_pool() -> PoolConfig {
    PoolConfig::new(vec![
        AcceleratorDescriptor::gemmini().with_reference_timing(),
        AcceleratorDescriptor::opengemm().with_reference_timing(),
    ])
    .with_workers_per_accelerator(2)
}

/// The canonical six-shape open-loop mix.
pub fn mixed_stream(requests: usize) -> Vec<TrafficRequest> {
    TrafficConfig {
        classes: mixed_serving_classes(),
        requests,
        mean_gap: 200,
        seed: 0xC0FFEE,
    }
    .open_loop_stream()
    .expect("valid traffic mix")
}

/// Sixteen shapes over four workers: the routing term dominates.
pub fn shape_heavy_stream(requests: usize) -> Vec<TrafficRequest> {
    TrafficConfig {
        classes: shape_heavy_classes(),
        requests,
        mean_gap: 400,
        seed: 0x5EED,
    }
    .open_loop_stream()
    .expect("valid shape-heavy mix")
}

/// On/off arrivals that build deep queues — sticky routing's worst case.
pub fn bursty_stream(requests: usize) -> Vec<TrafficRequest> {
    BurstyConfig {
        classes: mixed_serving_classes(),
        requests,
        burst_len: 24,
        burst_gap: 60,
        idle_gap: 12_000,
        seed: 0xB0257,
    }
    .stream()
    .expect("valid bursty mix")
}

/// The closed-loop generator configuration (static service estimate).
pub fn closed_loop_config(requests: usize) -> ClosedLoopConfig {
    ClosedLoopConfig {
        classes: mixed_serving_classes(),
        requests,
        clients: 12,
        think_time: 400,
        service_estimate: 250,
        seed: 0xC105ED,
    }
}

/// The mixed-platform mix the heterogeneous pool serves.
pub fn hetero_stream(requests: usize) -> Vec<TrafficRequest> {
    TrafficConfig {
        classes: mixed_platform_classes(),
        requests,
        mean_gap: 300,
        seed: 0x4E7E60,
    }
    .open_loop_stream()
    .expect("valid mixed-platform mix")
}

/// The canonical mix at a tighter arrival gap, for the timing-model pool.
pub fn contention_stream(requests: usize) -> Vec<TrafficRequest> {
    TrafficConfig {
        classes: mixed_serving_classes(),
        requests,
        mean_gap: 120,
        seed: 0xC047E47,
    }
    .open_loop_stream()
    .expect("valid contention mix")
}

/// Resolves a tunable stream name to its request stream and serving pool
/// (`None` for names the autotuner does not handle — the closed-loop
/// streams depend on calibration serves and are out of scope). The names
/// and their streams/pools match `serve_bench`'s exactly.
pub fn named_stream(name: &str, requests: usize) -> Option<(Vec<TrafficRequest>, PoolConfig)> {
    match name {
        "mixed" => Some((mixed_stream(requests), uniform_pool())),
        "shape_heavy" => Some((shape_heavy_stream(requests), uniform_pool())),
        "bursty" => Some((bursty_stream(requests), uniform_pool())),
        "hetero" => Some((hetero_stream(requests), hetero_pool())),
        "contention" => Some((contention_stream(requests), contention_pool())),
        _ => None,
    }
}
