//! A strict, dependency-free JSON syntax validator.
//!
//! The benchmark binaries hand-render their JSON reports (the workspace
//! builds offline, with no serde), which makes it easy to ship a file
//! with a trailing comma or an unescaped string that every downstream
//! consumer chokes on. [`validate`] checks a byte string against the JSON
//! grammar (RFC 8259) — objects, arrays, strings with escapes, numbers
//! without leading zeros, `true`/`false`/`null`, no trailing commas, no
//! trailing garbage — and reports the byte offset of the first violation.

/// Validates that `input` is exactly one well-formed JSON value.
///
/// # Errors
/// Returns a message with the byte offset of the first syntax violation.
pub fn validate(input: &str) -> Result<(), String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the top-level value"));
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("invalid JSON at byte {}: {}", self.pos, what)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.pos += 1,
                                    _ => return Err(self.err("expected 4 hex digits after \\u")),
                                }
                            }
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // integer part: `0` alone, or a nonzero-led digit run
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    return Err(self.err("leading zero in number"));
                }
            }
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected a digit after the decimal point"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected a digit in the exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            "-0.5e+10",
            "0",
            r#""a \"quoted\" é string""#,
            r#"{ "a": [1, 2.5, -3e2], "b": { "c": null }, "d": "x" }"#,
            "  [ {\"k\": [] } , 0.125 ]\n",
        ] {
            assert!(validate(ok).is_ok(), "{ok}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1, 2,]",        // trailing comma
            r#"{"a": 1,}"#,   // trailing comma
            r#"{"a" 1}"#,     // missing colon
            "{'a': 1}",       // wrong quotes
            "01",             // leading zero
            "1.",             // bare decimal point
            "1e",             // empty exponent
            "nul",            // truncated literal
            "\"unterminated", // unterminated string
            "\"bad \\x escape\"",
            "{} {}",     // trailing garbage
            "[1] extra", // trailing garbage
            "\"ctrl \u{0}char\"",
        ] {
            assert!(validate(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn errors_carry_the_byte_offset() {
        let err = validate("[1, ]").unwrap_err();
        assert!(err.contains("byte 4"), "{err}");
    }
}
