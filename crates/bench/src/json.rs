//! A strict, dependency-free JSON syntax validator and value parser.
//!
//! The benchmark binaries hand-render their JSON reports (the workspace
//! builds offline, with no serde), which makes it easy to ship a file
//! with a trailing comma or an unescaped string that every downstream
//! consumer chokes on. [`validate`] checks a byte string against the JSON
//! grammar (RFC 8259) — objects, arrays, strings with escapes, numbers
//! without leading zeros, `true`/`false`/`null`, no trailing commas, no
//! trailing garbage — and reports the byte offset of the first violation.
//! [`parse`] applies the same grammar but builds a [`Json`] value tree,
//! for the binaries that *consume* hand-rendered reports (`serve_bench
//! --tuned` reading `autotune`'s table).

/// Validates that `input` is exactly one well-formed JSON value.
///
/// # Errors
/// Returns a message with the byte offset of the first syntax violation.
pub fn validate(input: &str) -> Result<(), String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the top-level value"));
    }
    Ok(())
}

/// A parsed JSON value. Object members keep their document order (the
/// hand-rendered reports are deterministic, and parsing must not lose
/// that), and duplicate keys are a parse error rather than a silent
/// last-wins.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (the grammar's integers fit f64 exactly up to 2^53,
    /// far beyond any report's counters).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, members in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's members in document order (`None` on non-objects).
    pub fn entries(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// The string value (`None` on non-strings).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as a non-negative integer (`None` on non-numbers,
    /// negatives, and non-integers).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// `true` exactly on `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

/// Parses `input` as exactly one well-formed JSON value — the same
/// strict grammar as [`validate`], built into a [`Json`] tree.
///
/// # Errors
/// Returns a message with the byte offset of the first syntax violation
/// (or of a duplicate object key).
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the top-level value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("invalid JSON at byte {}: {}", self.pos, what)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.pos += 1,
                                    _ => return Err(self.err("expected 4 hex digits after \\u")),
                                }
                            }
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => self.parse_string().map(Json::Str),
            Some(b't') => self.literal("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.literal("false").map(|()| Json::Bool(false)),
            Some(b'n') => self.literal("null").map(|()| Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                let start = self.pos;
                self.number()?;
                let text = std::str::from_utf8(&self.bytes[start..self.pos])
                    .expect("the number grammar is ASCII");
                text.parse::<f64>()
                    .map(Json::Num)
                    .map_err(|_| self.err("unrepresentable number"))
            }
            _ => Err(self.err("expected a value")),
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.skip_ws();
        let mut members: Vec<(String, Json)> = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key_at = self.pos;
            let key = self.parse_string()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(format!(
                    "invalid JSON at byte {key_at}: duplicate object key `{key}`"
                ));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.skip_ws();
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    /// Validates a string with [`Parser::string`], then unescapes the
    /// validated interior.
    fn parse_string(&mut self) -> Result<String, String> {
        let start = self.pos;
        self.string()?;
        let interior = &self.bytes[start + 1..self.pos - 1];
        unescape(interior).map_err(|what| format!("invalid JSON at byte {start}: {what}"))
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // integer part: `0` alone, or a nonzero-led digit run
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    return Err(self.err("leading zero in number"));
                }
            }
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected a digit after the decimal point"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected a digit in the exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        Ok(())
    }
}

/// Unescapes a syntax-validated string interior. `\uXXXX` sequences are
/// decoded (surrogate pairs combined); lone surrogates are an error —
/// the strict stance, matching the validator's.
fn unescape(bytes: &[u8]) -> Result<String, String> {
    let mut out = String::with_capacity(bytes.len());
    let mut i = 0usize;
    let hex4 = |bytes: &[u8], at: usize| -> u32 {
        // four hex digits, guaranteed by the validator
        let text = std::str::from_utf8(&bytes[at..at + 4]).expect("hex digits are ASCII");
        u32::from_str_radix(text, 16).expect("validated hex")
    };
    while i < bytes.len() {
        if bytes[i] != b'\\' {
            // copy the longest escape-free run as one UTF-8 chunk
            let run = bytes[i..]
                .iter()
                .position(|&b| b == b'\\')
                .map_or(bytes.len(), |n| i + n);
            out.push_str(std::str::from_utf8(&bytes[i..run]).map_err(|_| "invalid UTF-8")?);
            i = run;
            continue;
        }
        i += 1;
        match bytes[i] {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{0008}'),
            b'f' => out.push('\u{000C}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let mut code = hex4(bytes, i + 1);
                i += 4;
                if (0xD800..0xDC00).contains(&code) {
                    // a high surrogate must pair with a following \uXXXX low
                    if bytes.get(i + 1) == Some(&b'\\') && bytes.get(i + 2) == Some(&b'u') {
                        let low = hex4(bytes, i + 3);
                        if !(0xDC00..0xE000).contains(&low) {
                            return Err("unpaired surrogate escape".into());
                        }
                        code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                        i += 6;
                    } else {
                        return Err("unpaired surrogate escape".into());
                    }
                } else if (0xDC00..0xE000).contains(&code) {
                    return Err("unpaired surrogate escape".into());
                }
                out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
            }
            _ => unreachable!("escape validated by Parser::string"),
        }
        i += 1;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            "-0.5e+10",
            "0",
            r#""a \"quoted\" é string""#,
            r#"{ "a": [1, 2.5, -3e2], "b": { "c": null }, "d": "x" }"#,
            "  [ {\"k\": [] } , 0.125 ]\n",
        ] {
            assert!(validate(ok).is_ok(), "{ok}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1, 2,]",        // trailing comma
            r#"{"a": 1,}"#,   // trailing comma
            r#"{"a" 1}"#,     // missing colon
            "{'a': 1}",       // wrong quotes
            "01",             // leading zero
            "1.",             // bare decimal point
            "1e",             // empty exponent
            "nul",            // truncated literal
            "\"unterminated", // unterminated string
            "\"bad \\x escape\"",
            "{} {}",     // trailing garbage
            "[1] extra", // trailing garbage
            "\"ctrl \u{0}char\"",
        ] {
            assert!(validate(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn errors_carry_the_byte_offset() {
        let err = validate("[1, ]").unwrap_err();
        assert!(err.contains("byte 4"), "{err}");
    }

    #[test]
    fn parses_a_report_shaped_document() {
        let doc = r#"{ "streams": { "mixed": { "p99": 1079, "cutoff": null,
                      "labels": ["a", "b"], "ratio": -2.5, "on": true } } }"#;
        let parsed = parse(doc).unwrap();
        let mixed = parsed.get("streams").and_then(|s| s.get("mixed")).unwrap();
        assert_eq!(mixed.get("p99").and_then(Json::as_u64), Some(1079));
        assert!(mixed.get("cutoff").unwrap().is_null());
        assert_eq!(
            mixed.get("labels").unwrap(),
            &Json::Arr(vec![Json::Str("a".into()), Json::Str("b".into())])
        );
        assert_eq!(mixed.get("ratio").unwrap(), &Json::Num(-2.5));
        assert_eq!(mixed.get("on").unwrap(), &Json::Bool(true));
        // members keep document order
        let keys: Vec<&str> = mixed
            .entries()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["p99", "cutoff", "labels", "ratio", "on"]);
    }

    #[test]
    fn parse_unescapes_strings() {
        assert_eq!(
            parse(r#""a \"q\" \n A 😀""#).unwrap(),
            Json::Str("a \"q\" \n A \u{1F600}".into())
        );
        assert!(parse(r#""\uD800 lone""#).is_err());
    }

    #[test]
    fn parse_rejects_what_validate_rejects_plus_duplicate_keys() {
        for bad in ["", "[1, 2,]", "{'a': 1}", "01", "{} {}"] {
            assert!(parse(bad).is_err(), "{bad:?} should be rejected");
        }
        let err = parse(r#"{"a": 1, "a": 2}"#).unwrap_err();
        assert!(err.contains("duplicate object key"), "{err}");
    }

    #[test]
    fn numeric_accessors_are_strict() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("\"7\"").unwrap().as_u64(), None);
        assert_eq!(parse("\"x\"").unwrap().as_str(), Some("x"));
    }
}
