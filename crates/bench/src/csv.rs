//! Machine-readable experiment output.
//!
//! The paper's artifact produces "console prints, figures, data tables";
//! the harness binaries mirror that by writing their measurements as CSV
//! next to the human-readable output, so downstream plotting (matplotlib,
//! gnuplot, ...) can regenerate the figures pixel-for-pixel.

use crate::Measurement;
use std::fmt::Write as _;

/// The column header shared by all measurement CSVs.
pub const HEADER: &str = "size,label,cycles,host_cycles,stall_cycles,overlap_cycles,\
insts_total,insts_config,insts_calc,config_bytes,launches,ops,perf_ops_per_cycle,\
i_oc_ops_per_byte,bw_eff_bytes_per_cycle";

/// Renders measurements as CSV (with header).
pub fn to_csv(measurements: &[Measurement]) -> String {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    for m in measurements {
        let c = &m.counters;
        writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{:.4},{:.4},{:.6}",
            m.size,
            m.label,
            c.cycles,
            c.host_cycles,
            c.stall_cycles,
            c.overlap_cycles,
            c.insts_total,
            c.insts_config,
            c.insts_calc,
            c.config_bytes,
            c.launches,
            m.ops,
            m.perf(),
            m.i_oc(),
            m.bw_eff(),
        )
        .expect("string write");
    }
    out
}

/// Writes measurements to `results/<name>.csv`, creating the directory.
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_csv(name: &str, measurements: &[Measurement]) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    std::fs::write(&path, to_csv(measurements))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_opengemm, GemminiFlavor};
    use accfg::pipeline::OptLevel;

    #[test]
    fn csv_has_one_row_per_measurement_plus_header() {
        let ms = vec![
            run_opengemm(16, OptLevel::Base),
            run_opengemm(16, OptLevel::All),
        ];
        let csv = to_csv(&ms);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("size,label,"));
        assert!(csv.contains("16,base,"));
        assert!(csv.contains("16,all,"));
        // every row has the full column count
        let cols = HEADER.split(',').count();
        for line in csv.lines() {
            assert_eq!(line.split(',').count(), cols, "{line}");
        }
    }

    #[test]
    fn csv_values_match_measurement() {
        let m = crate::run_gemmini(32, GemminiFlavor::CBaseline);
        let csv = to_csv(std::slice::from_ref(&m));
        let row = csv.lines().nth(1).unwrap();
        let fields: Vec<&str> = row.split(',').collect();
        assert_eq!(fields[0], "32");
        assert_eq!(fields[2], m.counters.cycles.to_string());
        assert_eq!(fields[11], m.ops.to_string());
    }
}
