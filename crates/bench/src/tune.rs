//! A deterministic two-phase autotuner over the serving knobs.
//!
//! The runtime ships hand-picked knob values — `load_slack = 256`,
//! `batch_cutoff = slack`, batching off, per-platform reference DVFS
//! tables, `power_cap` unset. This module closes the loop: it searches
//! the knob space per stream and emits the configuration that minimizes
//! the serving objective (p99 latency, then setup writes). Because a
//! simulated serve is a *noise-free* evaluation — the same stream and
//! knobs always produce byte-identical metrics — two classic AutoML
//! techniques apply in their strongest form:
//!
//! 1. **Capped-run racing** (LeapsAndBounds-style): every candidate
//!    serve carries a [`ServeBudget`] derived from the default config
//!    and the incumbent winner. The engine aborts the serve the moment
//!    its final p99/write totals are provably beyond the bounds, so
//!    losers pay only a fraction of a full evaluation. The budget's
//!    bounds are exact (see [`ServeBudget`]), which makes racing
//!    *winner-preserving*: a candidate aborts only if it could never
//!    have won — the p99 bound is the weaker of the default's and the
//!    incumbent's (a candidate above it loses the lexicographic
//!    comparison outright), and the write bound is the default's (a
//!    candidate above it is ineligible). [`tune_stream`] therefore
//!    returns the *same* winner with racing on or off, a property
//!    `tests/autotune.rs` pins.
//! 2. **Sequential model-based refinement** (FLASH-style): after the
//!    grid pass, a few rounds of local search around the incumbent. A
//!    deterministic distance-weighted surrogate over all completed
//!    evaluations ranks each round's neighbor proposals most-promising
//!    first — the order maximizes how quickly the racing budget
//!    tightens, and provably never changes the winner (every proposal
//!    is still evaluated).
//!
//! The searched knobs: routing policy, `load_slack`, `batch_cutoff`,
//! `max_batch`, and — on pools with reference timing models — the
//! thermal knobs: [`PoolGroup::power_cap`] and the DVFS table variants
//! `microbench dvfs_sensitivity` sweeps ([`DvfsVariant`]).
//!
//! Everything here is seeded-deterministic: no randomness, no wall
//! clock, f64 arithmetic in a fixed order — so the tuned-config table
//! ([`render_table`]) is byte-identical across runs and machines. The
//! `autotune` binary drives [`tune_stream`] over seed streams, reports
//! held-out streams under the transferred winner (the Eggensperger et
//! al. methodology: tune on one stream set, report on another), and
//! `serve_bench --tuned` consumes the table via [`parse_table`].
//!
//! [`ServeBudget`]: accfg_runtime::ServeBudget
//! [`PoolGroup::power_cap`]: accfg_runtime::PoolGroup

use crate::json::Json;
use accfg_runtime::{Policy, PoolConfig, Runtime, ServeBudget, ServeConfig, ServeError};
use accfg_sim::DvfsParams;
use accfg_workloads::TrafficRequest;

/// The DVFS table variants the autotuner sweeps on timing-model pools —
/// the same family `microbench dvfs_sensitivity` characterizes, each a
/// deterministic transform of the platform's reference table. Applied
/// uniformly to every pool member that has a DVFS table, so a uniform
/// group stays uniform (identical descriptors keep identical names).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DvfsVariant {
    /// The platform's reference table, unchanged.
    #[default]
    Reference,
    /// Warm/boost thresholds at a quarter of reference: the clock ramps
    /// up quickly and spends more launches boosted.
    EagerRamp,
    /// Warm/boost thresholds at four times reference: boost is earned
    /// slowly, most launches run cold or warm.
    LazyRamp,
    /// Cooldown after only 4 idle cycles: any arrival gap drops the
    /// clock back to cold.
    SkittishCooldown,
}

impl DvfsVariant {
    /// Every variant, in sweep order.
    pub const ALL: [DvfsVariant; 4] = [
        DvfsVariant::Reference,
        DvfsVariant::EagerRamp,
        DvfsVariant::LazyRamp,
        DvfsVariant::SkittishCooldown,
    ];

    /// The table label used in reports and `TUNED.json`.
    pub fn label(self) -> &'static str {
        match self {
            DvfsVariant::Reference => "reference",
            DvfsVariant::EagerRamp => "eager-ramp",
            DvfsVariant::LazyRamp => "lazy-ramp",
            DvfsVariant::SkittishCooldown => "skittish-cooldown",
        }
    }

    /// Parses [`DvfsVariant::label`] back.
    pub fn from_label(label: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|v| v.label() == label)
    }

    /// The variant's transform of a platform's reference table.
    pub fn apply(self, reference: DvfsParams) -> DvfsParams {
        match self {
            DvfsVariant::Reference => reference,
            DvfsVariant::EagerRamp => DvfsParams {
                warm_busy_cycles: reference.warm_busy_cycles / 4,
                boost_busy_cycles: reference.boost_busy_cycles / 4,
                ..reference
            },
            DvfsVariant::LazyRamp => DvfsParams {
                warm_busy_cycles: reference.warm_busy_cycles * 4,
                boost_busy_cycles: reference.boost_busy_cycles * 4,
                ..reference
            },
            DvfsVariant::SkittishCooldown => DvfsParams {
                cooldown_idle_cycles: 4,
                ..reference
            },
        }
    }
}

/// One point of the serving knob space: everything the autotuner can
/// turn, spanning [`ServeConfig`] (policy, slack, cutoff, batch) and the
/// pool (power cap, DVFS tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnobConfig {
    /// Routing policy.
    pub policy: Policy,
    /// Load-slack horizon, in estimated outstanding cycles.
    pub load_slack: u64,
    /// Queue-depth-aware batch cutoff (`None` = uncapped coalescing).
    pub batch_cutoff: Option<u64>,
    /// Maximum batch size (1 disables batching).
    pub max_batch: usize,
    /// Boost power cap applied to *every* pool group (`None` = pool
    /// default, i.e. unbounded).
    pub power_cap: Option<usize>,
    /// DVFS table variant for every member with a timing model.
    pub dvfs: DvfsVariant,
}

impl Default for KnobConfig {
    /// The runtime's hand-picked defaults — exactly
    /// [`ServeConfig::default`] plus an untouched pool.
    fn default() -> Self {
        let cfg = ServeConfig::default();
        Self {
            policy: cfg.policy,
            load_slack: cfg.load_slack,
            batch_cutoff: cfg.batch_cutoff,
            max_batch: cfg.max_batch,
            power_cap: None,
            dvfs: DvfsVariant::Reference,
        }
    }
}

impl KnobConfig {
    /// Collapses inert knobs so behaviorally identical points coincide:
    /// without batching (`max_batch <= 1`) the cutoff is never read, so
    /// it canonicalizes to the slack horizon.
    #[must_use]
    pub fn canonical(mut self) -> Self {
        if self.max_batch <= 1 {
            self.batch_cutoff = Some(self.load_slack);
        }
        self
    }

    /// The [`ServeConfig`] for these knobs (pool knobs excluded — see
    /// [`KnobConfig::apply_pool`]).
    pub fn serve_config(&self) -> ServeConfig {
        ServeConfig {
            policy: self.policy,
            max_batch: self.max_batch,
            load_slack: self.load_slack,
            batch_cutoff: self.batch_cutoff,
            ..ServeConfig::default()
        }
    }

    /// The pool for these knobs: `base` with the power cap applied to
    /// every group and the DVFS variant's transform applied to every
    /// member that has a table. Identity-timing members are untouched
    /// (the thermal knobs are inert there), and uniform groups stay
    /// uniform, so the transformed pool passes the runtime's
    /// variant-name and plan-compatibility validation whenever `base`
    /// does.
    pub fn apply_pool(&self, base: &PoolConfig) -> PoolConfig {
        let mut pool = base.clone();
        for group in &mut pool.groups {
            if let Some(cap) = self.power_cap {
                group.power_cap = Some(cap);
            }
            for member in &mut group.members {
                if let Some(reference) = member.timing.dvfs {
                    member.timing.dvfs = Some(self.dvfs.apply(reference));
                }
            }
        }
        pool
    }

    /// The knobs as a single-line JSON object (the `knobs` value in
    /// `TUNED.json`).
    pub fn to_json(&self) -> String {
        let cutoff = match self.batch_cutoff {
            Some(c) => c.to_string(),
            None => "null".to_string(),
        };
        let cap = match self.power_cap {
            Some(c) => c.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"policy\": \"{}\", \"load_slack\": {}, \"batch_cutoff\": {}, \
             \"max_batch\": {}, \"power_cap\": {}, \"dvfs\": \"{}\"}}",
            self.policy.label(),
            self.load_slack,
            cutoff,
            self.max_batch,
            cap,
            self.dvfs.label()
        )
    }

    /// Parses [`KnobConfig::to_json`] back from a parsed [`Json`] value.
    ///
    /// # Errors
    /// Returns a message naming the missing or malformed member.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let policy_label = v
            .get("policy")
            .and_then(Json::as_str)
            .ok_or("knobs: missing or non-string `policy`")?;
        let policy = [
            Policy::Fifo,
            Policy::FifoElide,
            Policy::ConfigAffinity,
            Policy::Cost,
            Policy::Thermal,
        ]
        .into_iter()
        .find(|p| p.label() == policy_label)
        .ok_or_else(|| format!("knobs: unknown policy `{policy_label}`"))?;
        let field = |name: &str| {
            v.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("knobs: missing or non-integer `{name}`"))
        };
        let nullable = |name: &str| match v.get(name) {
            Some(Json::Null) => Ok(None),
            Some(j) => j
                .as_u64()
                .map(Some)
                .ok_or_else(|| format!("knobs: `{name}` must be an integer or null")),
            None => Err(format!("knobs: missing `{name}`")),
        };
        let dvfs_label = v
            .get("dvfs")
            .and_then(Json::as_str)
            .ok_or("knobs: missing or non-string `dvfs`")?;
        Ok(Self {
            policy,
            load_slack: field("load_slack")?,
            batch_cutoff: nullable("batch_cutoff")?,
            max_batch: field("max_batch")? as usize,
            power_cap: nullable("power_cap")?.map(|c| c as usize),
            dvfs: DvfsVariant::from_label(dvfs_label)
                .ok_or_else(|| format!("knobs: unknown dvfs variant `{dvfs_label}`"))?,
        })
    }

    /// A deterministic, evaluation-order-independent total order over
    /// knob points, used only to break exact objective ties.
    fn rank(&self) -> String {
        self.to_json()
    }
}

/// The serving objective, minimized lexicographically: tail latency
/// first, then configuration traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Objective {
    /// p99 arrival-to-completion latency, in simulated cycles.
    pub p99: u64,
    /// Total emitted setup writes.
    pub setup_writes: u64,
}

impl Objective {
    /// Weak Pareto domination made strict: no worse on both metrics and
    /// strictly better on at least one. This is the *eligibility* bar a
    /// tuned config must clear against the default — a config that
    /// trades writes for latency (or vice versa) is not accepted.
    pub fn dominates(&self, other: &Objective) -> bool {
        self.p99 <= other.p99
            && self.setup_writes <= other.setup_writes
            && (self.p99 < other.p99 || self.setup_writes < other.setup_writes)
    }

    /// The lexicographic comparison key.
    pub fn key(&self) -> (u64, u64) {
        (self.p99, self.setup_writes)
    }

    /// The objective as a single-line JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"p99\": {}, \"setup_writes\": {}}}",
            self.p99, self.setup_writes
        )
    }
}

/// The outcome of one candidate evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Eval {
    /// The serve ran to completion with this objective.
    Complete(Objective),
    /// The capped serve was aborted: its final objective provably
    /// violates the budget, so the candidate cannot win.
    Aborted,
}

/// Serves `stream` on a fresh runtime under `knobs` (optionally capped
/// by `budget`) and extracts the objective. Candidate serves never use a
/// warm-start store: a capped run that aborted must not flush partial
/// EWMA state, and the engine guarantees an aborted serve flushes
/// nothing — the autotuner simply never configures one.
///
/// # Panics
/// Panics on any serve failure other than a budget abort, and on
/// functional or simulation failures — a tuning candidate that breaks
/// the serve is a bug, not a bad objective.
pub fn evaluate(
    pool: &PoolConfig,
    stream: &[TrafficRequest],
    knobs: &KnobConfig,
    budget: Option<ServeBudget>,
) -> Eval {
    let mut runtime = Runtime::new(knobs.apply_pool(pool));
    let cfg = ServeConfig {
        budget,
        ..knobs.serve_config()
    };
    match runtime.serve(stream, &cfg) {
        Ok(report) => {
            assert_eq!(
                report.metrics.check_failures, 0,
                "candidate {knobs:?}: functional checks failed"
            );
            assert_eq!(
                report.metrics.sim_failures, 0,
                "candidate {knobs:?}: simulation failed"
            );
            Eval::Complete(Objective {
                p99: report.metrics.latency.p99,
                setup_writes: report.metrics.setup_writes,
            })
        }
        Err(ServeError::BudgetExceeded { .. }) => Eval::Aborted,
        Err(e) => panic!("candidate {knobs:?}: serve failed: {e}"),
    }
}

/// The grid [`tune_stream`]'s first phase races. The core dimensions —
/// policy × slack horizon × batching/cutoff — always; the thermal
/// dimensions (DVFS variant × power cap, under the cost-aware policies)
/// only with `thermal` (pools whose members carry timing models —
/// identity pools cannot distinguish them).
pub fn knob_space(thermal: bool) -> Vec<KnobConfig> {
    let mut policies = vec![Policy::FifoElide, Policy::ConfigAffinity, Policy::Cost];
    if thermal {
        policies.push(Policy::Thermal);
    }
    let mut space: Vec<KnobConfig> = Vec::new();
    let mut push = |k: KnobConfig| {
        let k = k.canonical();
        if !space.contains(&k) {
            space.push(k);
        }
    };
    for &policy in &policies {
        for slack in [128u64, 256, 512] {
            let point = KnobConfig {
                policy,
                load_slack: slack,
                batch_cutoff: Some(slack),
                max_batch: 1,
                power_cap: None,
                dvfs: DvfsVariant::Reference,
            };
            push(point);
            for cutoff in [Some(slack), None] {
                push(KnobConfig {
                    max_batch: 8,
                    batch_cutoff: cutoff,
                    ..point
                });
            }
        }
    }
    if thermal {
        for policy in [Policy::Cost, Policy::Thermal] {
            for dvfs in DvfsVariant::ALL {
                for power_cap in [None, Some(1)] {
                    push(KnobConfig {
                        policy,
                        load_slack: 256,
                        batch_cutoff: Some(256),
                        max_batch: 1,
                        power_cap,
                        dvfs,
                    });
                }
            }
        }
    }
    // the default point is evaluated (uncapped) by `tune_stream` itself
    space.retain(|k| *k != KnobConfig::default().canonical());
    space
}

/// Search options for [`tune_stream`].
#[derive(Debug, Clone, Copy)]
pub struct TuneOptions {
    /// FLASH-style local-refinement rounds after the grid pass.
    pub refine_rounds: usize,
    /// Capped-run racing: evaluate candidates under a [`ServeBudget`]
    /// derived from the default and the incumbent. Off, every candidate
    /// serves the full stream — same winner (the pinned oracle
    /// property), more cycles.
    pub racing: bool,
}

impl Default for TuneOptions {
    fn default() -> Self {
        Self {
            refine_rounds: 2,
            racing: true,
        }
    }
}

/// What [`tune_stream`] found for one stream.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// The stream name.
    pub stream: String,
    /// The default knobs' objective (the baseline every candidate must
    /// dominate).
    pub default_objective: Objective,
    /// The winning knobs (the defaults when nothing dominated them).
    pub knobs: KnobConfig,
    /// The winner's objective.
    pub objective: Objective,
    /// `true` if the winner strictly dominates the default.
    pub improved: bool,
    /// Candidate serves started (including the default's).
    pub evaluations: u64,
    /// Candidate serves the racing budget cut short.
    pub aborts: u64,
}

/// Knob-space distance for the refinement surrogate: a weighted Hamming
/// distance over the categorical knobs plus log-scale distance on the
/// cycle horizons.
fn distance(a: &KnobConfig, b: &KnobConfig) -> f64 {
    let log2 = |v: u64| (v.max(1) as f64).log2();
    let mut d = 0.0;
    if a.policy != b.policy {
        d += 4.0;
    }
    d += (log2(a.load_slack) - log2(b.load_slack)).abs();
    d += match (a.batch_cutoff, b.batch_cutoff) {
        (None, None) => 0.0,
        (Some(x), Some(y)) => (log2(x) - log2(y)).abs(),
        _ => 2.0,
    };
    if a.max_batch != b.max_batch {
        d += 2.0;
    }
    if a.power_cap != b.power_cap {
        d += 2.0;
    }
    if a.dvfs != b.dvfs {
        d += 2.0;
    }
    d
}

/// The refinement surrogate: an inverse-square-distance-weighted mean of
/// every completed evaluation's objective, normalized by the default's —
/// lower predicts better. Purely deterministic (fixed iteration order),
/// and used only to *order* a round's proposals, never to skip one, so
/// it can bias speed but not the winner.
fn surrogate(completed: &[(KnobConfig, Objective)], cand: &KnobConfig, default: &Objective) -> f64 {
    let (mut weight_sum, mut p99, mut writes) = (0.0f64, 0.0f64, 0.0f64);
    for (knobs, obj) in completed {
        let d = 1.0 + distance(knobs, cand);
        let w = 1.0 / (d * d);
        weight_sum += w;
        p99 += w * obj.p99 as f64;
        writes += w * obj.setup_writes as f64;
    }
    p99 / weight_sum / default.p99.max(1) as f64
        + writes / weight_sum / default.setup_writes.max(1) as f64
}

/// One-step knob perturbations of `center` — the refinement phase's
/// proposal neighborhood.
fn neighbors(center: &KnobConfig, thermal: bool) -> Vec<KnobConfig> {
    let mut out = Vec::new();
    for slack in [center.load_slack / 2, center.load_slack * 2] {
        if (64..=1024).contains(&slack) {
            let mut k = *center;
            k.load_slack = slack;
            // a capped cutoff follows the horizon, as with_load_slack does
            k.batch_cutoff = k.batch_cutoff.map(|_| slack);
            out.push(k);
        }
    }
    if center.max_batch > 1 {
        match center.batch_cutoff {
            Some(c) => {
                for cutoff in [c / 2, c * 2] {
                    if (32..=2048).contains(&cutoff) {
                        out.push(KnobConfig {
                            batch_cutoff: Some(cutoff),
                            ..*center
                        });
                    }
                }
                out.push(KnobConfig {
                    batch_cutoff: None,
                    ..*center
                });
            }
            None => out.push(KnobConfig {
                batch_cutoff: Some(center.load_slack),
                ..*center
            }),
        }
    }
    out.push(KnobConfig {
        max_batch: if center.max_batch > 1 { 1 } else { 8 },
        ..*center
    });
    let mut policies = vec![Policy::FifoElide, Policy::ConfigAffinity, Policy::Cost];
    if thermal {
        policies.push(Policy::Thermal);
    }
    for policy in policies {
        if policy != center.policy {
            out.push(KnobConfig { policy, ..*center });
        }
    }
    if thermal {
        for dvfs in DvfsVariant::ALL {
            if dvfs != center.dvfs {
                out.push(KnobConfig { dvfs, ..*center });
            }
        }
        out.push(KnobConfig {
            power_cap: match center.power_cap {
                None => Some(1),
                Some(_) => None,
            },
            ..*center
        });
    }
    out
}

/// Evaluates one candidate under the racing budget and folds it into the
/// incumbent. The budget: p99 no worse than the *weaker* of the default
/// and the incumbent (anything above cannot win the lexicographic
/// comparison), writes no worse than the default (anything above is
/// ineligible). Ties on the exact objective break by [`KnobConfig::rank`]
/// — an evaluation-order-independent rule, so the winner is identical
/// however racing reorders or aborts the losers.
#[allow(clippy::too_many_arguments)]
fn consider(
    pool: &PoolConfig,
    stream: &[TrafficRequest],
    cand: KnobConfig,
    default: &Objective,
    racing: bool,
    best: &mut Option<(KnobConfig, Objective)>,
    completed: &mut Vec<(KnobConfig, Objective)>,
    evaluations: &mut u64,
    aborts: &mut u64,
) {
    let budget = racing.then(|| ServeBudget {
        p99_bound: Some(
            best.as_ref()
                .map_or(default.p99, |(_, b)| b.p99.min(default.p99)),
        ),
        max_setup_writes: Some(default.setup_writes),
    });
    *evaluations += 1;
    match evaluate(pool, stream, &cand, budget) {
        Eval::Aborted => *aborts += 1,
        Eval::Complete(obj) => {
            completed.push((cand, obj));
            if obj.dominates(default) {
                let wins = match best {
                    None => true,
                    Some((bk, bo)) => {
                        obj.key() < bo.key() || (obj.key() == bo.key() && cand.rank() < bk.rank())
                    }
                };
                if wins {
                    *best = Some((cand, obj));
                }
            }
        }
    }
}

/// Tunes one stream over `space`: a racing grid pass, then
/// `opts.refine_rounds` rounds of surrogate-ordered local refinement
/// around the incumbent. Deterministic end to end; with racing on or
/// off the winner (knobs *and* objective) is identical — only
/// `evaluations`/`aborts` and the cycles spent differ.
pub fn tune_stream(
    name: &str,
    pool: &PoolConfig,
    stream: &[TrafficRequest],
    space: &[KnobConfig],
    opts: &TuneOptions,
) -> TuneResult {
    let default_knobs = KnobConfig::default().canonical();
    let default = match evaluate(pool, stream, &default_knobs, None) {
        Eval::Complete(obj) => obj,
        Eval::Aborted => unreachable!("unbudgeted serves never abort"),
    };
    let mut evaluations = 1u64;
    let mut aborts = 0u64;
    let mut attempted: Vec<KnobConfig> = vec![default_knobs];
    let mut completed: Vec<(KnobConfig, Objective)> = vec![(default_knobs, default)];
    let mut best: Option<(KnobConfig, Objective)> = None;
    let thermal = space
        .iter()
        .any(|k| k.power_cap.is_some() || k.dvfs != DvfsVariant::Reference);

    // phase 1: race the grid
    for cand in space {
        let cand = cand.canonical();
        if attempted.contains(&cand) {
            continue;
        }
        attempted.push(cand);
        consider(
            pool,
            stream,
            cand,
            &default,
            opts.racing,
            &mut best,
            &mut completed,
            &mut evaluations,
            &mut aborts,
        );
    }

    // phase 2: sequential model-based refinement around the incumbent
    for _ in 0..opts.refine_rounds {
        let center = best.map_or(default_knobs, |(k, _)| k);
        let mut proposals: Vec<KnobConfig> = Vec::new();
        for k in neighbors(&center, thermal) {
            let k = k.canonical();
            if !attempted.contains(&k) && !proposals.contains(&k) {
                proposals.push(k);
            }
        }
        if proposals.is_empty() {
            break;
        }
        let scores: Vec<f64> = proposals
            .iter()
            .map(|k| surrogate(&completed, k, &default))
            .collect();
        let mut ranked: Vec<usize> = (0..proposals.len()).collect();
        ranked.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).unwrap().then(a.cmp(&b)));
        for &i in &ranked {
            let cand = proposals[i];
            attempted.push(cand);
            consider(
                pool,
                stream,
                cand,
                &default,
                opts.racing,
                &mut best,
                &mut completed,
                &mut evaluations,
                &mut aborts,
            );
        }
    }

    let improved = best.is_some();
    let (knobs, objective) = best.unwrap_or((default_knobs, default));
    TuneResult {
        stream: name.to_string(),
        default_objective: default,
        knobs,
        objective,
        improved,
        evaluations,
        aborts,
    }
}

/// One stream's row of the tuned-config table.
#[derive(Debug, Clone)]
pub struct StreamEntry {
    /// The stream name.
    pub name: String,
    /// `"seed"` (tuned on) or `"held_out"` (reported only).
    pub role: &'static str,
    /// Where the knobs came from: `"search"` for seed streams, the name
    /// of the seed stream whose winner transferred (or `"default"`) for
    /// held-out streams.
    pub source: String,
    /// The knobs this row was served with.
    pub knobs: KnobConfig,
    /// The default knobs' objective on this stream.
    pub default: Objective,
    /// The tuned knobs' objective on this stream.
    pub tuned: Objective,
    /// Candidate serves started while tuning this stream (0 for
    /// held-out rows).
    pub evaluations: u64,
    /// Candidate serves the racing budget cut short.
    pub aborts: u64,
}

/// Renders the tuned-config table (`TUNED.json`). Deterministic: a
/// byte-identical function of its inputs, which are themselves
/// deterministic — so two autotune runs produce byte-identical files.
pub fn render_table(requests: usize, opts: &TuneOptions, entries: &[StreamEntry]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"autotune\": {{\"requests\": {requests}, \"refine_rounds\": {}, \"racing\": {}}},\n",
        opts.refine_rounds, opts.racing
    ));
    out.push_str("  \"streams\": {\n");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        out.push_str(&format!("    \"{}\": {{\n", e.name));
        out.push_str(&format!(
            "      \"role\": \"{}\", \"source\": \"{}\",\n",
            e.role, e.source
        ));
        out.push_str(&format!("      \"knobs\": {},\n", e.knobs.to_json()));
        out.push_str(&format!("      \"default\": {},\n", e.default.to_json()));
        out.push_str(&format!("      \"tuned\": {},\n", e.tuned.to_json()));
        out.push_str(&format!(
            "      \"delta\": {{\"p99\": {}, \"setup_writes\": {}}},\n",
            e.default.p99 as i64 - e.tuned.p99 as i64,
            e.default.setup_writes as i64 - e.tuned.setup_writes as i64
        ));
        out.push_str(&format!(
            "      \"search\": {{\"evaluations\": {}, \"capped_aborts\": {}}}\n",
            e.evaluations, e.aborts
        ));
        out.push_str(&format!("    }}{comma}\n"));
    }
    out.push_str("  }\n}\n");
    crate::json::validate(&out).expect("tuned table must be strict JSON");
    out
}

/// Parses a tuned-config table back into `(stream, knobs)` rows, in
/// document order — what `serve_bench --tuned` consumes.
///
/// # Errors
/// Returns a message on malformed JSON or a malformed/missing `knobs`
/// object.
pub fn parse_table(text: &str) -> Result<Vec<(String, KnobConfig)>, String> {
    let doc = crate::json::parse(text)?;
    let streams = doc
        .get("streams")
        .and_then(Json::entries)
        .ok_or("tuned table: missing `streams` object")?;
    streams
        .iter()
        .map(|(name, entry)| {
            let knobs = entry
                .get("knobs")
                .ok_or_else(|| format!("tuned table: stream `{name}` has no `knobs`"))?;
            Ok((
                name.clone(),
                KnobConfig::from_json(knobs).map_err(|e| format!("stream `{name}`: {e}"))?,
            ))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_knobs_mirror_the_serve_config_defaults() {
        let knobs = KnobConfig::default();
        let cfg = knobs.serve_config();
        let reference = ServeConfig::default();
        assert_eq!(cfg.policy, reference.policy);
        assert_eq!(cfg.load_slack, reference.load_slack);
        assert_eq!(cfg.batch_cutoff, reference.batch_cutoff);
        assert_eq!(cfg.max_batch, reference.max_batch);
        // canonicalization is a no-op on the defaults
        assert_eq!(knobs.canonical(), knobs);
    }

    #[test]
    fn canonical_collapses_inert_cutoffs() {
        let a = KnobConfig {
            batch_cutoff: Some(64),
            ..KnobConfig::default()
        };
        let b = KnobConfig {
            batch_cutoff: None,
            ..KnobConfig::default()
        };
        assert_eq!(a.canonical(), b.canonical());
        // with batching on, the cutoff is live and must survive
        let batched = KnobConfig {
            max_batch: 8,
            batch_cutoff: None,
            ..KnobConfig::default()
        };
        assert_eq!(batched.canonical().batch_cutoff, None);
    }

    #[test]
    fn knobs_round_trip_through_json() {
        for knobs in [
            KnobConfig::default(),
            KnobConfig {
                policy: Policy::Thermal,
                load_slack: 512,
                batch_cutoff: None,
                max_batch: 8,
                power_cap: Some(1),
                dvfs: DvfsVariant::LazyRamp,
            },
        ] {
            let text = knobs.to_json();
            crate::json::validate(&text).unwrap();
            let parsed = KnobConfig::from_json(&crate::json::parse(&text).unwrap()).unwrap();
            assert_eq!(parsed, knobs);
        }
    }

    #[test]
    fn domination_is_strict() {
        let base = Objective {
            p99: 100,
            setup_writes: 1000,
        };
        let better = Objective {
            p99: 100,
            setup_writes: 999,
        };
        let trade = Objective {
            p99: 99,
            setup_writes: 1001,
        };
        assert!(better.dominates(&base));
        assert!(!base.dominates(&base));
        assert!(!trade.dominates(&base), "metric trades are not accepted");
    }

    #[test]
    fn knob_space_is_duplicate_free_and_canonical() {
        for thermal in [false, true] {
            let space = knob_space(thermal);
            for (i, k) in space.iter().enumerate() {
                assert_eq!(*k, k.canonical());
                assert!(!space[..i].contains(k), "duplicate point {k:?}");
            }
            assert!(
                !space.contains(&KnobConfig::default().canonical()),
                "the default point would be a wasted evaluation"
            );
        }
        assert!(knob_space(true).len() > knob_space(false).len());
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = KnobConfig::default();
        let b = KnobConfig {
            policy: Policy::Cost,
            load_slack: 512,
            ..a
        };
        assert_eq!(distance(&a, &a), 0.0);
        assert_eq!(distance(&a, &b), distance(&b, &a));
        assert!(distance(&a, &b) > 0.0);
    }

    #[test]
    fn table_round_trips() {
        let entries = vec![StreamEntry {
            name: "mixed".into(),
            role: "seed",
            source: "search".into(),
            knobs: KnobConfig {
                max_batch: 8,
                ..KnobConfig::default()
            },
            default: Objective {
                p99: 1079,
                setup_writes: 121857,
            },
            tuned: Objective {
                p99: 1079,
                setup_writes: 121854,
            },
            evaluations: 28,
            aborts: 17,
        }];
        let text = render_table(4000, &TuneOptions::default(), &entries);
        let rows = parse_table(&text).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, "mixed");
        assert_eq!(rows[0].1, entries[0].knobs);
    }
}
