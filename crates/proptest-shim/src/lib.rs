//! A minimal, deterministic, dependency-free stand-in for the crates.io
//! `proptest` crate, covering exactly the API surface this workspace's
//! property tests use.
//!
//! Offline builds cannot fetch the real `proptest`; this shim keeps the
//! property tests compiling and running with the same semantics the tests
//! rely on:
//!
//! - [`strategy::Strategy`] with `prop_map`, tuple/range/`any` strategies,
//!   [`prop_oneof!`], and `prop::collection::vec`;
//! - string strategies from a small regex subset (`.{m,n}`,
//!   `[class]{m,n}`, literals) — enough for the parser-robustness tests;
//! - the [`proptest!`] macro running a fixed number of cases from a
//!   deterministic per-test seed (no shrinking: failures print the full
//!   generated inputs instead).
//!
//! Determinism is a feature here: every CI run explores the same cases, so
//! a green run stays green.

#![warn(missing_docs)]

pub mod test_runner {
    //! Test-runner configuration and the deterministic RNG.

    /// Run configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// SplitMix64 — deterministic, seeded per (test name, case index).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the RNG for one case of one named test.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut seed = 0xCAFE_F00D_D15E_A5E5u64 ^ u64::from(case).wrapping_mul(0x9E37_79B9);
            for b in test_name.bytes() {
                seed = seed
                    .wrapping_mul(0x100_0000_01B3)
                    .wrapping_add(u64::from(b));
            }
            Self { state: seed }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;

    /// A generator of values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    impl<T: Strategy + ?Sized> Strategy for Box<T> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Boxes a strategy for use in a heterogeneous [`Union`].
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// A uniform choice between same-valued strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union from its arms.
        ///
        /// # Panics
        /// Panics if `arms` is empty.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (u128::from(rng.next_u64()) % span) as i128;
                    (self.start as i128 + off) as $t
                }
            }
        )*};
    }
    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

pub mod arbitrary {
    //! `any::<T>()` for the primitive types the tests draw from.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy producing arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod string {
    //! String strategies from a small regex subset.
    //!
    //! Supported: a sequence of elements, each a literal character, `.`
    //! (any printable character except newline), or a `[...]` class (with
    //! `\`-escapes and `a-z` ranges), optionally followed by `{m}`, or
    //! `{m,n}` repetition. This covers every pattern used in the
    //! workspace's tests; anything else panics loudly.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[derive(Debug, Clone)]
    enum Element {
        Literal(char),
        AnyChar,
        Class(Vec<char>),
    }

    #[derive(Debug, Clone)]
    struct Piece {
        element: Element,
        min: usize,
        max: usize,
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pieces = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let element = match chars[i] {
                '.' => {
                    i += 1;
                    Element::AnyChar
                }
                '[' => {
                    i += 1;
                    let mut class = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let c = if chars[i] == '\\' {
                            i += 1;
                            chars[i]
                        } else {
                            chars[i]
                        };
                        // `a-z` range (a `-` not at the class edges)
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let end = chars[i + 2];
                            assert!(c <= end, "bad class range in pattern {pattern:?}");
                            class.extend(c..=end);
                            i += 3;
                        } else {
                            class.push(c);
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated class in pattern {pattern:?}");
                    i += 1; // closing ]
                    Element::Class(class)
                }
                '\\' => {
                    i += 1;
                    let c = chars[i];
                    i += 1;
                    Element::Literal(c)
                }
                c => {
                    i += 1;
                    Element::Literal(c)
                }
            };
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated repetition")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("repetition lower bound"),
                        hi.trim().parse().expect("repetition upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("repetition count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(min <= max, "bad repetition in pattern {pattern:?}");
            pieces.push(Piece { element, min, max });
        }
        pieces
    }

    fn gen_char(element: &Element, rng: &mut TestRng) -> char {
        match element {
            Element::Literal(c) => *c,
            // printable ASCII, tab included, newline excluded (regex `.`)
            Element::AnyChar => {
                let n = rng.below(96);
                if n == 95 {
                    '\t'
                } else {
                    char::from(0x20 + n as u8)
                }
            }
            Element::Class(chars) => chars[rng.below(chars.len() as u64) as usize],
        }
    }

    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for piece in parse(self) {
                let count = piece.min + rng.below(piece.max as u64 - piece.min as u64 + 1) as usize;
                for _ in 0..count {
                    out.push(gen_char(&piece.element, rng));
                }
            }
            out
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` strategy with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod prelude {
    //! The common imports, mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Uniformly chooses between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Defines property tests: each runs `cases` deterministic cases, printing
/// the generated inputs when a case fails (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$attr:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {$(
        // the user-written `#[test]` (and any doc comments) pass through
        $(#[$attr])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng); )+
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $body
                }));
                if let Err(payload) = outcome {
                    eprintln!(
                        "property {} failed at case {case} with inputs:",
                        stringify!($name),
                    );
                    $( eprintln!("  {} = {:?}", stringify!($arg), $arg); )+
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let v = (-64i64..64).generate(&mut rng);
            assert!((-64..64).contains(&v));
            let u = (0usize..5).generate(&mut rng);
            assert!(u < 5);
        }
    }

    #[test]
    fn string_patterns_match_their_shape() {
        let mut rng = TestRng::for_case("strings", 1);
        for _ in 0..500 {
            let s = ".{0,200}".generate(&mut rng);
            assert!(s.chars().count() <= 200);
            assert!(!s.contains('\n'));
            let t = "[a-c0-1]{1,8}".generate(&mut rng);
            assert!((1..=8).contains(&t.chars().count()));
            assert!(t.chars().all(|c| "abc01".contains(c)));
        }
    }

    #[test]
    fn class_escapes_are_literal() {
        let mut rng = TestRng::for_case("escapes", 2);
        let s = r#"[%@{}()\[\]<>=:,\"a-z0-9 ]{64,64}"#.generate(&mut rng);
        assert_eq!(s.chars().count(), 64);
        for c in s.chars() {
            assert!(
                "%@{}()[]<>=:,\" ".contains(c) || c.is_ascii_lowercase() || c.is_ascii_digit(),
                "unexpected char {c:?}"
            );
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let strat = prop_oneof![
            (0i64..10).prop_map(|v| v * 2),
            (100i64..110).prop_map(|v| v + 1),
        ];
        let mut rng = TestRng::for_case("oneof", 3);
        let mut low = false;
        let mut high = false;
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            if v < 20 {
                assert_eq!(v % 2, 0);
                low = true;
            } else {
                assert!((101..111).contains(&v));
                high = true;
            }
        }
        assert!(low && high, "both arms should be exercised");
    }

    #[test]
    fn vec_lengths_respect_bounds() {
        let mut rng = TestRng::for_case("vecs", 4);
        for _ in 0..200 {
            let v = prop::collection::vec(any::<i8>(), 1..4).generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let make = || {
            let mut rng = TestRng::for_case("determinism", 7);
            (0..32)
                .map(|_| (0i64..1000).generate(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(make(), make());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_runs(a in 0i64..100, b in any::<bool>()) {
            prop_assert!(a < 100);
            prop_assert_eq!(b & !b, false);
        }
    }
}
