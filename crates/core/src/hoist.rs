//! Control-flow hoisting rewrites (Section 5.4.1), run right before
//! deduplication to expose more redundant writes:
//!
//! - [`HoistSetupIntoBranch`]: a setup consuming an `scf.if`'s joined state
//!   is sunk into both branches, restoring linear setup chains on each path.
//! - [`HoistInvariantSetupFields`]: setup fields that are written with the
//!   same loop-invariant SSA value by every setup in a loop move to a new
//!   setup in front of the loop (Figure 9, middle) — the accfg analogue of
//!   LICM, with the paper's extra "constant throughout the whole body"
//!   constraint.

use crate::dialect::{
    self, make_setup, setup_fields, setup_input_state, setup_set_fields, setup_state,
};
use accfg_ir::analysis::value_visible_at;
use accfg_ir::{Changed, Module, OpId, Opcode, Pass, Type, ValueDef, ValueId};

/// Sinks setups into the branches of the `scf.if` producing their input
/// state.
#[derive(Debug, Clone, Copy, Default)]
pub struct HoistSetupIntoBranch;

impl Pass for HoistSetupIntoBranch {
    fn name(&self) -> &str {
        "accfg-hoist-setup-into-branch"
    }

    fn run(&self, m: &mut Module) -> Changed {
        let mut changed = Changed::No;
        loop {
            let candidate = m.walk_module().into_iter().find(|&op| {
                m.is_alive(op) && m.op(op).opcode == Opcode::AccfgSetup && can_sink(m, op)
            });
            match candidate {
                Some(setup) => {
                    sink_into_branches(m, setup);
                    changed = Changed::Yes;
                }
                None => break,
            }
        }
        changed
    }
}

fn input_if(m: &Module, setup: OpId) -> Option<(OpId, u32)> {
    let input = setup_input_state(m, setup)?;
    match m.value(input).def {
        ValueDef::OpResult { op, index } if m.op(op).opcode == Opcode::If => Some((op, index)),
        _ => None,
    }
}

fn can_sink(m: &Module, setup: OpId) -> bool {
    let Some((if_op, index)) = input_if(m, setup) else {
        return false;
    };
    // the joined state must feed only this setup (a launch in between would
    // observe the pre-setup state and pin the order)
    let state = m.op(if_op).results[index as usize];
    if m.uses_of(state).len() != 1 {
        return false;
    }
    // same block, and every field operand visible inside both branches
    if m.op(setup).parent != m.op(if_op).parent {
        return false;
    }
    setup_fields(m, setup).iter().all(|(_, v)| {
        (0..2).all(|r| {
            let yield_op = m.terminator(m.body_block(if_op, r));
            value_visible_at(m, *v, yield_op)
        })
    })
}

fn sink_into_branches(m: &mut Module, setup: OpId) {
    let (if_op, index) = input_if(m, setup).expect("checked by can_sink");
    let accel = dialect::accelerator(m, setup);
    let fields = setup_fields(m, setup);
    for r in 0..2 {
        let block = m.body_block(if_op, r);
        let yield_op = m.terminator(block);
        let branch_state = m.op(yield_op).operands[index as usize];
        let clone = make_setup(m, &accel, Some(branch_state), &fields);
        m.move_op_before(clone, yield_op);
        let mut operands = m.op(yield_op).operands.clone();
        operands[index as usize] = setup_state(m, clone);
        m.set_operands(yield_op, operands);
    }
    let joined = m.op(if_op).results[index as usize];
    let result = setup_state(m, setup);
    m.replace_all_uses(result, joined);
    m.erase_op(setup);
}

/// Moves loop-invariant setup fields in front of the loop.
#[derive(Debug, Clone, Copy, Default)]
pub struct HoistInvariantSetupFields;

impl Pass for HoistInvariantSetupFields {
    fn name(&self) -> &str {
        "accfg-hoist-invariant-setup-fields"
    }

    fn run(&self, m: &mut Module) -> Changed {
        let mut changed = Changed::No;
        // innermost loops first, so fields can bubble out level by level
        let mut loops: Vec<OpId> = m
            .walk_module()
            .into_iter()
            .filter(|&op| m.op(op).opcode == Opcode::For)
            .collect();
        loops.reverse();
        for for_op in loops {
            if !m.is_alive(for_op) {
                continue;
            }
            changed = changed.or(hoist_from_loop(m, for_op));
        }
        changed
    }
}

fn hoist_from_loop(m: &mut Module, for_op: OpId) -> Changed {
    if dialect::subtree_has_clobber(m, for_op) {
        return Changed::No;
    }
    let mut changed = Changed::No;
    // one threaded state per accelerator: find state-typed iter args
    let body = m.body_block(for_op, 0);
    let state_args: Vec<(usize, String)> = m
        .block(body)
        .args
        .iter()
        .enumerate()
        .filter_map(|(i, &a)| match m.value_type(a) {
            Type::State(accel) => Some((i, accel.clone())),
            _ => None,
        })
        .collect();
    for (arg_index, accel) in state_args {
        changed = changed.or(hoist_accel_fields(m, for_op, arg_index, &accel));
    }
    changed
}

fn hoist_accel_fields(m: &mut Module, for_op: OpId, arg_index: usize, accel: &str) -> Changed {
    let setups = dialect::setups_for(m, for_op, accel);
    if setups.is_empty() {
        return Changed::No;
    }
    // candidate fields: written by some setup with a loop-invariant value
    // that is visible before the loop, and never written with a *different*
    // value by any setup in the body
    let mut candidates: Vec<(String, ValueId)> = Vec::new();
    let mut conflicted: Vec<String> = Vec::new();
    for &s in &setups {
        for (name, value) in setup_fields(m, s) {
            if conflicted.contains(&name) {
                continue;
            }
            match candidates.iter().find(|(n, _)| *n == name) {
                Some((_, existing)) if *existing == value => {}
                Some(_) => {
                    candidates.retain(|(n, _)| *n != name);
                    conflicted.push(name);
                }
                None => {
                    let invariant =
                        !m.is_defined_inside(value, for_op) && value_visible_at(m, value, for_op);
                    if invariant {
                        candidates.push((name, value));
                    } else {
                        conflicted.push(name);
                    }
                }
            }
        }
    }
    if candidates.is_empty() {
        return Changed::No;
    }

    // build the pre-loop setup, splicing it into the loop's init chain
    let init_operand_index = 3 + (arg_index - 1);
    let init = m.op(for_op).operands[init_operand_index];
    let pre = make_setup(m, accel, Some(init), &candidates);
    m.move_op_before(pre, for_op);
    m.set_operand(for_op, init_operand_index, setup_state(m, pre));

    // strip the hoisted fields from every in-loop writer
    for &s in &setups {
        let remaining: Vec<(String, ValueId)> = setup_fields(m, s)
            .into_iter()
            .filter(|(n, _)| !candidates.iter().any(|(c, _)| c == n))
            .collect();
        if remaining.len() != setup_fields(m, s).len() {
            setup_set_fields(m, s, &remaining);
        }
    }
    Changed::Yes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dedup::{Deduplicate, MergeSetups, RemoveEmptySetups};
    use crate::interp::interpret;
    use crate::trace_states::TraceStates;
    use accfg_ir::passes::Dce;
    use accfg_ir::{parse_module, print_module, verify, FuncBuilder};

    /// The paper's step-3 sub-pipeline: hoist, then dedup, then clean up.
    fn optimize(m: &mut Module) {
        TraceStates.run(m);
        HoistSetupIntoBranch.run(m);
        HoistInvariantSetupFields.run(m);
        Deduplicate.run(m);
        RemoveEmptySetups.run(m);
        MergeSetups.run(m);
        Dce.run(m);
        verify(m).expect("optimized IR verifies");
    }

    #[test]
    fn figure9_loop_invariant_field_hoists() {
        // the exact scenario of Figure 9: "A" is loop-invariant, "i" is not
        let mut m = Module::new();
        let (mut b, args) = FuncBuilder::new_func(&mut m, "f", vec![accfg_ir::Type::I64]);
        let lb = b.const_index(0);
        let ub = b.const_index(10);
        let one = b.const_index(1);
        b.build_for(lb, ub, one, vec![], |b, iv, _| {
            let s = b.setup("acc", &[("A", args[0]), ("i", iv)]);
            let t = b.launch("acc", s);
            b.await_token("acc", t);
            vec![]
        });
        b.ret(vec![]);

        let before = interpret(&m, "f", &[77], 10_000).unwrap();
        assert_eq!(before.setup_writes, 20); // 10 × (A, i)
        optimize(&mut m);
        let after = interpret(&m, "f", &[77], 10_000).unwrap();
        assert_eq!(before.launches, after.launches);
        assert_eq!(after.setup_writes, 11); // 1 × A + 10 × i

        let text = print_module(&m);
        // pre-loop setup carries "A"; in-loop setup only "i"
        assert!(
            text.contains("accfg.setup \"acc\" to (\"A\" = %0)"),
            "{text}"
        );
        assert!(text.contains("to (\"i\" ="), "{text}");
    }

    #[test]
    fn conflicting_writers_block_hoisting() {
        // two launches per iteration with different "mode" values: the paper
        // explicitly forbids hoisting even though each value is invariant
        let text = r#"
        func.func @f(%p: i64, %q: i64) {
          %lb = arith.constant() {value = 0} : index
          %ub = arith.constant() {value = 4} : index
          %st = arith.constant() {value = 1} : index
          scf.for %i = %lb to %ub step %st {
            %s1 = accfg.setup "acc" to ("mode" = %p) : !accfg.state<"acc">
            %t1 = accfg.launch "acc" with %s1 : !accfg.token<"acc">
            accfg.await "acc" %t1
            %s2 = accfg.setup "acc" from %s1 to ("mode" = %q) : !accfg.state<"acc">
            %t2 = accfg.launch "acc" with %s2 : !accfg.token<"acc">
            accfg.await "acc" %t2
            scf.yield()
          }
          func.return()
        }
        "#;
        let mut m = parse_module(text).unwrap();
        let before = interpret(&m, "f", &[5, 6], 10_000).unwrap();
        optimize(&mut m);
        let after = interpret(&m, "f", &[5, 6], 10_000).unwrap();
        assert_eq!(before.launches, after.launches);
        // mode flips every launch; no write can be elided
        assert_eq!(after.setup_writes, before.setup_writes);
    }

    #[test]
    fn partial_agreement_hoists_only_agreed_fields() {
        let text = r#"
        func.func @f(%p: i64, %q: i64) {
          %lb = arith.constant() {value = 0} : index
          %ub = arith.constant() {value = 4} : index
          %st = arith.constant() {value = 1} : index
          scf.for %i = %lb to %ub step %st {
            %s1 = accfg.setup "acc" to ("base" = %p, "mode" = %p) : !accfg.state<"acc">
            %t1 = accfg.launch "acc" with %s1 : !accfg.token<"acc">
            accfg.await "acc" %t1
            %s2 = accfg.setup "acc" from %s1 to ("base" = %p, "mode" = %q) : !accfg.state<"acc">
            %t2 = accfg.launch "acc" with %s2 : !accfg.token<"acc">
            accfg.await "acc" %t2
            scf.yield()
          }
          func.return()
        }
        "#;
        let mut m = parse_module(text).unwrap();
        let before = interpret(&m, "f", &[5, 6], 10_000).unwrap();
        assert_eq!(before.setup_writes, 16);
        optimize(&mut m);
        let after = interpret(&m, "f", &[5, 6], 10_000).unwrap();
        assert_eq!(before.launches, after.launches);
        // "base" hoisted (1 write); "mode" alternates (8 writes)
        assert_eq!(after.setup_writes, 9);
    }

    #[test]
    fn sinks_setup_into_branches_for_linear_chains() {
        let text = r#"
        func.func @f(%c: i1, %p: i64, %q: i64) {
          %s0 = accfg.setup "acc" to ("base" = %p) : !accfg.state<"acc">
          %t0 = accfg.launch "acc" with %s0 : !accfg.token<"acc">
          accfg.await "acc" %t0
          %sj = scf.if %c -> (!accfg.state<"acc">) then {
            %s1 = accfg.setup "acc" from %s0 to ("mode" = %p) : !accfg.state<"acc">
            scf.yield(%s1)
          } else {
            scf.yield(%s0)
          }
          %s2 = accfg.setup "acc" from %sj to ("base" = %p, "mode" = %p) : !accfg.state<"acc">
          %t2 = accfg.launch "acc" with %s2 : !accfg.token<"acc">
          accfg.await "acc" %t2
          func.return()
        }
        "#;
        let m = parse_module(text).unwrap();
        for c in [0, 1] {
            let before = interpret(&m, "f", &[c, 3, 4], 1000).unwrap();
            let mut m2 = m.clone();
            optimize(&mut m2);
            let after = interpret(&m2, "f", &[c, 3, 4], 1000).unwrap();
            assert_eq!(before.launches, after.launches, "c={c}");
        }
        let mut m3 = m.clone();
        optimize(&mut m3);
        // after sinking + dedup: the then-branch setup writes "mode" once,
        // the sunk copy dedups "base" (known from s0) and "mode" in the then
        // branch; in the else branch only "mode" survives
        let t = print_module(&m3);
        assert!(
            !t.contains("\"base\" = %1, \"mode\""),
            "base write must be gone: {t}"
        );
    }

    #[test]
    fn does_not_sink_when_state_also_launched() {
        let text = r#"
        func.func @f(%c: i1, %p: i64) {
          %sj = scf.if %c -> (!accfg.state<"acc">) then {
            %s1 = accfg.setup "acc" to ("mode" = %p) : !accfg.state<"acc">
            scf.yield(%s1)
          } else {
            %s2 = accfg.setup "acc" to ("mode" = %p) : !accfg.state<"acc">
            scf.yield(%s2)
          }
          %tj = accfg.launch "acc" with %sj : !accfg.token<"acc">
          accfg.await "acc" %tj
          %s3 = accfg.setup "acc" from %sj to ("mode" = %p) : !accfg.state<"acc">
          %t3 = accfg.launch "acc" with %s3 : !accfg.token<"acc">
          accfg.await "acc" %t3
          func.return()
        }
        "#;
        let mut m = parse_module(text).unwrap();
        assert!(!HoistSetupIntoBranch.run(&mut m).changed());
    }

    #[test]
    fn nested_loops_hoist_through_both_levels() {
        let mut m = Module::new();
        let (mut b, args) = FuncBuilder::new_func(&mut m, "f", vec![accfg_ir::Type::I64]);
        let lb = b.const_index(0);
        let ub = b.const_index(3);
        let one = b.const_index(1);
        b.build_for(lb, ub, one, vec![], |b, i, _| {
            b.build_for(lb, ub, one, vec![], |b, j, _| {
                let s = b.setup("acc", &[("A", args[0]), ("i", i), ("j", j)]);
                let t = b.launch("acc", s);
                b.await_token("acc", t);
                vec![]
            });
            vec![]
        });
        b.ret(vec![]);

        let before = interpret(&m, "f", &[42], 100_000).unwrap();
        assert_eq!(before.setup_writes, 27);
        optimize(&mut m);
        let after = interpret(&m, "f", &[42], 100_000).unwrap();
        assert_eq!(before.launches, after.launches);
        // A: 1 write; i: 3 writes (hoisted to outer body); j: 9 writes
        assert_eq!(after.setup_writes, 13);
    }
}
