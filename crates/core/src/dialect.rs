//! Typed views and mutators for `accfg` dialect operations.
//!
//! The ops themselves are defined in `accfg-ir` (so the printer/parser and
//! verifier know them); this module adds the accessors the optimization
//! passes need: reading a setup's field list, rewiring input states,
//! removing deduplicated fields, and classifying which ops preserve
//! accelerator configuration state (Section 5.1's effects model).

use accfg_ir::{AttrMap, Attribute, Effects, Module, OpId, Opcode, Type, ValueId};

/// Reads the `accelerator` attribute of any accfg op.
///
/// # Panics
/// Panics if the op lacks the attribute (such ops do not pass the verifier).
pub fn accelerator(m: &Module, op: OpId) -> String {
    m.str_attr(op, "accelerator")
        .expect("accfg op has an `accelerator` attribute")
        .to_string()
}

/// The `(name, value)` field pairs of an `accfg.setup`.
pub fn setup_fields(m: &Module, setup: OpId) -> Vec<(String, ValueId)> {
    debug_assert_eq!(m.op(setup).opcode, Opcode::AccfgSetup);
    let names: Vec<String> = m
        .attr(setup, "fields")
        .and_then(Attribute::as_array)
        .map(|a| {
            a.iter()
                .filter_map(|x| x.as_str().map(str::to_string))
                .collect()
        })
        .unwrap_or_default();
    let skip = usize::from(setup_input_state(m, setup).is_some());
    names
        .into_iter()
        .zip(m.op(setup).operands[skip..].iter().copied())
        .collect()
}

/// The input state operand of an `accfg.setup`, if it has one.
pub fn setup_input_state(m: &Module, setup: OpId) -> Option<ValueId> {
    debug_assert_eq!(m.op(setup).opcode, Opcode::AccfgSetup);
    let has = m
        .attr(setup, "has_input_state")
        .and_then(Attribute::as_bool)
        .unwrap_or(false);
    has.then(|| m.op(setup).operands[0])
}

/// The state produced by an `accfg.setup`.
pub fn setup_state(m: &Module, setup: OpId) -> ValueId {
    debug_assert_eq!(m.op(setup).opcode, Opcode::AccfgSetup);
    m.op(setup).results[0]
}

/// Sets or clears the input state of a setup, keeping fields unchanged.
pub fn setup_set_input_state(m: &mut Module, setup: OpId, input: Option<ValueId>) {
    let fields: Vec<ValueId> = {
        let skip = usize::from(setup_input_state(m, setup).is_some());
        m.op(setup).operands[skip..].to_vec()
    };
    let mut operands = Vec::with_capacity(fields.len() + 1);
    if let Some(s) = input {
        operands.push(s);
    }
    operands.extend(fields);
    m.set_operands(setup, operands);
    m.set_attr(setup, "has_input_state", Attribute::Bool(input.is_some()));
}

/// Replaces the full field list of a setup (keeping its input state).
pub fn setup_set_fields(m: &mut Module, setup: OpId, fields: &[(String, ValueId)]) {
    let input = setup_input_state(m, setup);
    let mut operands = Vec::with_capacity(fields.len() + 1);
    if let Some(s) = input {
        operands.push(s);
    }
    operands.extend(fields.iter().map(|(_, v)| *v));
    m.set_operands(setup, operands);
    m.set_attr(
        setup,
        "fields",
        Attribute::str_array(fields.iter().map(|(n, _)| n.clone())),
    );
}

/// Creates a detached `accfg.setup` op.
pub fn make_setup(
    m: &mut Module,
    accelerator: &str,
    input: Option<ValueId>,
    fields: &[(String, ValueId)],
) -> OpId {
    let mut attrs = AttrMap::new();
    attrs.insert("accelerator".into(), Attribute::Str(accelerator.into()));
    attrs.insert(
        "fields".into(),
        Attribute::str_array(fields.iter().map(|(n, _)| n.clone())),
    );
    attrs.insert("has_input_state".into(), Attribute::Bool(input.is_some()));
    let mut operands = Vec::with_capacity(fields.len() + 1);
    if let Some(s) = input {
        operands.push(s);
    }
    operands.extend(fields.iter().map(|(_, v)| *v));
    m.create_op(
        Opcode::AccfgSetup,
        operands,
        vec![Type::state(accelerator)],
        attrs,
        vec![],
    )
}

/// How an op interacts with accelerator configuration state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateEffect {
    /// Cannot touch accelerator state (pure ops, annotated foreign ops).
    Preserves,
    /// Part of the accfg dialect: modeled precisely by the passes.
    Accfg,
    /// Structured control flow: effect determined by region contents.
    Structural,
    /// May clobber any accelerator state (unannotated calls, opaque ops,
    /// raw target-level config writes).
    Clobbers,
}

/// Classifies `op` per the paper's effects model: pure ops and
/// `#accfg.effects<none>`-annotated ops preserve state; unannotated foreign
/// ops (and anything marked `#accfg.effects<all>`) clobber it.
pub fn state_effect(m: &Module, op: OpId) -> StateEffect {
    // an explicit annotation wins, either way
    if let Some(e) = m.attr(op, "effects").and_then(Attribute::as_effects) {
        return match e {
            Effects::None => StateEffect::Preserves,
            Effects::All => StateEffect::Clobbers,
        };
    }
    let opcode = m.op(op).opcode;
    if opcode.is_pure() {
        return StateEffect::Preserves;
    }
    match opcode {
        Opcode::AccfgSetup | Opcode::AccfgLaunch | Opcode::AccfgAwait => StateEffect::Accfg,
        Opcode::For | Opcode::If => StateEffect::Structural,
        Opcode::Yield | Opcode::Return | Opcode::Func => StateEffect::Preserves,
        _ => StateEffect::Clobbers,
    }
}

/// `true` if any op nested under `root` (inclusive) may clobber the state of
/// `accel` — i.e. a [`StateEffect::Clobbers`] op, or a setup for the same
/// accelerator that the caller is not already tracking.
pub fn subtree_has_clobber(m: &Module, root: OpId) -> bool {
    let mut found = false;
    m.walk(root, &mut |op| {
        if state_effect(m, op) == StateEffect::Clobbers {
            found = true;
        }
    });
    found
}

/// All `accfg.setup` ops for `accel` nested under `root` (inclusive).
pub fn setups_for(m: &Module, root: OpId, accel: &str) -> Vec<OpId> {
    m.walk_collect(root)
        .into_iter()
        .filter(|&o| {
            m.op(o).opcode == Opcode::AccfgSetup && m.str_attr(o, "accelerator") == Some(accel)
        })
        .collect()
}

/// The accelerator names referenced by any accfg op under `root`.
pub fn accelerators_used(m: &Module, root: OpId) -> Vec<String> {
    let mut names: Vec<String> = m
        .walk_collect(root)
        .into_iter()
        .filter(|&o| m.op(o).opcode.is_accfg())
        .filter_map(|o| m.str_attr(o, "accelerator").map(str::to_string))
        .collect();
    names.sort();
    names.dedup();
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use accfg_ir::FuncBuilder;

    fn setup_module() -> (Module, OpId) {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let x = b.const_index(4);
        let y = b.const_index(8);
        let s = b.setup("gemm", &[("x", x), ("y", y)]);
        let t = b.launch("gemm", s);
        b.await_token("gemm", t);
        b.ret(vec![]);
        let func = m.func_by_name("f").unwrap();
        let setup = setups_for(&m, func, "gemm")[0];
        (m, setup)
    }

    #[test]
    fn reads_fields() {
        let (m, setup) = setup_module();
        let fields = setup_fields(&m, setup);
        assert_eq!(fields.len(), 2);
        assert_eq!(fields[0].0, "x");
        assert_eq!(fields[1].0, "y");
        assert_eq!(setup_input_state(&m, setup), None);
    }

    #[test]
    fn rewires_input_state() {
        let (mut m, setup) = setup_module();
        let state = setup_state(&m, setup);
        // nonsensical self-input, but exercises the plumbing
        setup_set_input_state(&mut m, setup, Some(state));
        assert_eq!(setup_input_state(&m, setup), Some(state));
        assert_eq!(setup_fields(&m, setup).len(), 2);
        setup_set_input_state(&mut m, setup, None);
        assert_eq!(setup_input_state(&m, setup), None);
        assert_eq!(setup_fields(&m, setup).len(), 2);
    }

    #[test]
    fn replaces_field_list() {
        let (mut m, setup) = setup_module();
        let fields = setup_fields(&m, setup);
        setup_set_fields(&mut m, setup, &fields[..1]);
        assert_eq!(setup_fields(&m, setup).len(), 1);
        assert_eq!(setup_fields(&m, setup)[0].0, "x");
    }

    #[test]
    fn effects_classification() {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let c = b.const_index(1);
        let s = b.setup("a", &[("x", c)]);
        let t = b.launch("a", s);
        b.await_token("a", t);
        b.opaque("printf", vec![], vec![], Some(Effects::None));
        b.opaque("mystery", vec![], vec![], None);
        b.call("ext", vec![], vec![]);
        b.ret(vec![]);
        let func = m.func_by_name("f").unwrap();
        let ops = m.walk_collect(func);
        let effects: Vec<StateEffect> = ops.iter().map(|&o| state_effect(&m, o)).collect();
        assert_eq!(effects[1], StateEffect::Preserves); // constant
        assert_eq!(effects[2], StateEffect::Accfg); // setup
        assert_eq!(effects[3], StateEffect::Accfg); // launch
        assert_eq!(effects[4], StateEffect::Accfg); // await
        assert_eq!(effects[5], StateEffect::Preserves); // printf w/ effects<none>
        assert_eq!(effects[6], StateEffect::Clobbers); // mystery
        assert_eq!(effects[7], StateEffect::Clobbers); // unannotated call
    }

    #[test]
    fn clobber_detection_in_subtrees() {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let zero = b.const_index(0);
        let four = b.const_index(4);
        let one = b.const_index(1);
        b.build_for(zero, four, one, vec![], |b, _, _| {
            b.call("ext", vec![], vec![]);
            vec![]
        });
        b.ret(vec![]);
        let func = m.func_by_name("f").unwrap();
        assert!(subtree_has_clobber(&m, func));
    }

    #[test]
    fn accelerator_inventory() {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let c = b.const_index(1);
        let s1 = b.setup("beta", &[("x", c)]);
        let t1 = b.launch("beta", s1);
        b.await_token("beta", t1);
        let s2 = b.setup("alpha", &[("x", c)]);
        let t2 = b.launch("alpha", s2);
        b.await_token("alpha", t2);
        b.ret(vec![]);
        let func = m.func_by_name("f").unwrap();
        assert_eq!(accelerators_used(&m, func), vec!["alpha", "beta"]);
    }
}
