//! Preset pass pipelines mirroring the compilation flow of Figure 8.
//!
//! Step 1 (frontend emission of setup/launch/await clusters) is done by the
//! workload generators; step 5 (target lowering) by `accfg-targets`. The
//! pipelines here are steps 2–4 plus the generic cleanups the paper gets
//! "for free" from MLIR.

use crate::dedup::{Deduplicate, MergeSetups, RemoveEmptySetups};
use crate::hoist::{HoistInvariantSetupFields, HoistSetupIntoBranch};
use crate::overlap::{AccelFilter, OverlapInBlock, RotateLoops};
use crate::trace_states::TraceStates;
use accfg_ir::passes::{Canonicalize, Cse, Dce, Licm};
use accfg_ir::PassManager;

/// Which accfg optimizations to apply — the four configurations evaluated in
/// Figure 12 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OptLevel {
    /// Generic cleanups only; no configuration-aware optimization.
    Base,
    /// Configuration deduplication (Section 5.4) only.
    Dedup,
    /// Configuration–computation overlap (Section 5.5) only.
    Overlap,
    /// Deduplication followed by overlap — the paper's "All".
    #[default]
    All,
}

impl OptLevel {
    /// All four levels, in Figure 12 order.
    pub const ALL_LEVELS: [OptLevel; 4] = [
        OptLevel::Base,
        OptLevel::Dedup,
        OptLevel::Overlap,
        OptLevel::All,
    ];

    /// Short lowercase label, as used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            OptLevel::Base => "base",
            OptLevel::Dedup => "dedup",
            OptLevel::Overlap => "overlap",
            OptLevel::All => "all",
        }
    }

    /// `true` if this level includes deduplication.
    pub fn includes_dedup(self) -> bool {
        matches!(self, OptLevel::Dedup | OptLevel::All)
    }

    /// `true` if this level includes overlap.
    pub fn includes_overlap(self) -> bool {
        matches!(self, OptLevel::Overlap | OptLevel::All)
    }
}

/// Builds the pass pipeline for `level`.
///
/// `overlap_filter` restricts the overlap rewrites to accelerators whose
/// hardware supports concurrent configuration; pass [`AccelFilter::All`]
/// when every target does.
///
/// # Examples
///
/// ```
/// use accfg::pipeline::{pipeline, OptLevel};
/// use accfg::AccelFilter;
///
/// let pm = pipeline(OptLevel::All, AccelFilter::All);
/// assert!(pm.pass_names().contains(&"accfg-dedup"));
/// assert!(pm.pass_names().contains(&"accfg-rotate-loops"));
/// ```
pub fn pipeline(level: OptLevel, overlap_filter: AccelFilter) -> PassManager {
    let mut pm = PassManager::new();
    // generic cleanups first: fold the bit-packing arithmetic, merge equal
    // address expressions (the dedup proxy needs CSE), hoist invariants
    pm.add(Canonicalize).add(Cse).add(Licm);
    // step 2: connect configuration state through control flow
    pm.add(TraceStates);
    if level.includes_dedup() {
        // step 3 with its enabling rewrites and cleanups
        pm.add(HoistSetupIntoBranch)
            .add(HoistInvariantSetupFields)
            .add(Deduplicate)
            .add(RemoveEmptySetups)
            .add(MergeSetups);
    }
    if level.includes_overlap() {
        // step 4 (concurrent-configuration targets only)
        pm.add(RotateLoops {
            filter: overlap_filter.clone(),
        })
        .add(OverlapInBlock {
            filter: overlap_filter,
            partial: false,
        });
    }
    pm.add(Canonicalize).add(Cse).add(Dce);
    pm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::interpret;
    use accfg_ir::{verify, FuncBuilder, Module, Type};

    /// The motivating workload: a tiled loop with redundant configuration.
    fn workload() -> Module {
        let mut m = Module::new();
        let (mut b, args) =
            FuncBuilder::new_func(&mut m, "tiles", vec![Type::I64, Type::I64, Type::I64]);
        let lb = b.const_index(0);
        let ub = b.const_index(8);
        let one = b.const_index(1);
        b.build_for(lb, ub, one, vec![], |b, iv, _| {
            let sixty_four = b.const_index(64);
            let off = b.muli(iv, sixty_four);
            let a = b.addi(args[0], off);
            let c = b.addi(args[2], off);
            let s = b.setup(
                "gemm",
                &[("A", a), ("B", args[1]), ("C", c), ("size", sixty_four)],
            );
            let t = b.launch("gemm", s);
            b.await_token("gemm", t);
            vec![]
        });
        b.ret(vec![]);
        m
    }

    #[test]
    fn all_levels_preserve_semantics() {
        let reference =
            interpret(&workload(), "tiles", &[0x1000, 0x2000, 0x3000], 100_000).unwrap();
        for level in OptLevel::ALL_LEVELS {
            let mut m = workload();
            pipeline(level, AccelFilter::All).run(&mut m).unwrap();
            verify(&m).unwrap();
            let t = interpret(&m, "tiles", &[0x1000, 0x2000, 0x3000], 100_000).unwrap();
            assert_eq!(reference.launches, t.launches, "level={level:?}");
        }
    }

    #[test]
    fn dedup_reduces_setup_writes() {
        let mut base = workload();
        pipeline(OptLevel::Base, AccelFilter::All)
            .run(&mut base)
            .unwrap();
        let base_trace = interpret(&base, "tiles", &[1, 2, 3], 100_000).unwrap();

        let mut deduped = workload();
        pipeline(OptLevel::Dedup, AccelFilter::All)
            .run(&mut deduped)
            .unwrap();
        let dedup_trace = interpret(&deduped, "tiles", &[1, 2, 3], 100_000).unwrap();

        // B and size are loop-invariant: 8×4 writes shrink to 2 + 8×2
        assert_eq!(base_trace.setup_writes, 32);
        assert_eq!(dedup_trace.setup_writes, 18);
    }

    #[test]
    fn overlap_keeps_write_count_but_rotates() {
        let mut m = workload();
        pipeline(OptLevel::Overlap, AccelFilter::All)
            .run(&mut m)
            .unwrap();
        let t = interpret(&m, "tiles", &[1, 2, 3], 100_000).unwrap();
        // one extra prologue setup and one wasted epilogue setup: the
        // rotated loop configures trip+1 times, 4 fields each
        assert_eq!(t.setup_writes, 36);
        assert_eq!(t.launches.len(), 8);
    }

    #[test]
    fn labels_and_predicates() {
        assert_eq!(OptLevel::Base.label(), "base");
        assert_eq!(OptLevel::All.label(), "all");
        assert!(OptLevel::All.includes_dedup() && OptLevel::All.includes_overlap());
        assert!(!OptLevel::Base.includes_dedup() && !OptLevel::Base.includes_overlap());
        assert!(OptLevel::Dedup.includes_dedup() && !OptLevel::Dedup.includes_overlap());
        assert!(!OptLevel::Overlap.includes_dedup() && OptLevel::Overlap.includes_overlap());
    }
}
