//! # accfg: the configuration-wall compiler abstraction
//!
//! This crate is the primary contribution of *"The Configuration Wall:
//! Characterization and Elimination of Accelerator Configuration Overhead"*
//! (ASPLOS 2026), reproduced in Rust: a compiler abstraction that makes
//! accelerator configuration visible to the optimizer, plus the passes that
//! move programs out of the configuration-bound region of the roofline.
//!
//! ## The abstraction (Section 5.1)
//!
//! Three ops model the configure/launch/await lifecycle:
//!
//! ```text
//! %state = accfg.setup "gemm" to ("x" = %x, "A" = %ptrA) : !accfg.state<"gemm">
//! %token = accfg.launch "gemm" with %state : !accfg.token<"gemm">
//! accfg.await "gemm" %token
//! ```
//!
//! `!accfg.state` values thread the contents of the accelerator's
//! configuration registers through the SSA graph, so ordinary compiler
//! machinery (CSE, SSA-value equality) can reason about external register
//! state — the thing `volatile` inline assembly makes impossible.
//!
//! ## The passes (Sections 5.3–5.5)
//!
//! - [`TraceStates`] connects setups through straight-line code, `scf.if`,
//!   and `scf.for` (step 2 of Figure 8)
//! - [`HoistSetupIntoBranch`] / [`HoistInvariantSetupFields`] expose more
//!   redundancy (Section 5.4.1)
//! - [`Deduplicate`] removes writes of values already in the registers,
//!   with [`RemoveEmptySetups`] and [`MergeSetups`] cleanups (Section 5.4)
//! - [`RotateLoops`] / [`OverlapInBlock`] hide configuration behind
//!   accelerator execution on concurrent-configuration hardware
//!   (Section 5.5)
//! - [`pipeline::pipeline`] assembles them per [`pipeline::OptLevel`],
//!   matching the four configurations of Figure 12
//!
//! ## Example
//!
//! ```
//! use accfg_ir::{FuncBuilder, Module, Type};
//! use accfg::pipeline::{pipeline, OptLevel};
//! use accfg::{interpret, AccelFilter};
//!
//! // a tiled loop that reconfigures the full register file every iteration
//! let mut m = Module::new();
//! let (mut b, args) = FuncBuilder::new_func(&mut m, "tiles", vec![Type::I64]);
//! let (lb, ub, step) = (b.const_index(0), b.const_index(4), b.const_index(1));
//! b.build_for(lb, ub, step, vec![], |b, iv, _| {
//!     let s = b.setup("gemm", &[("base", args[0]), ("i", iv)]);
//!     let t = b.launch("gemm", s);
//!     b.await_token("gemm", t);
//!     vec![]
//! });
//! b.ret(vec![]);
//!
//! let before = interpret(&m, "tiles", &[0x80], 10_000)?;
//! pipeline(OptLevel::All, AccelFilter::All).run(&mut m).unwrap();
//! let after = interpret(&m, "tiles", &[0x80], 10_000)?;
//! assert_eq!(before.launches, after.launches);   // semantics preserved
//! assert!(after.setup_writes < before.setup_writes); // config eliminated
//! # Ok::<(), accfg::InterpError>(())
//! ```

#![warn(missing_docs)]

pub mod dedup;
pub mod dialect;
pub mod discipline;
pub mod hoist;
pub mod interp;
pub mod overlap;
pub mod pipeline;
pub mod regstate;
pub mod trace_states;

pub use dedup::{Deduplicate, MergeSetups, RemoveEmptySetups};
pub use dialect::{
    accelerator, accelerators_used, make_setup, setup_fields, setup_input_state, setup_state,
    setups_for, state_effect, StateEffect,
};
pub use discipline::{static_setup_field_count, verify_discipline, DisciplineError};
pub use hoist::{HoistInvariantSetupFields, HoistSetupIntoBranch};
pub use interp::{interpret, ExecTrace, InterpError, LaunchRecord, CLOBBER_POISON};
pub use overlap::{AccelFilter, OverlapInBlock, RotateLoops};
pub use pipeline::{pipeline, OptLevel};
pub use regstate::{launch_write_plan, RegisterFile};
pub use trace_states::TraceStates;
