//! State tracing (Section 5.3): establish the order of setup invocations by
//! threading an explicit state SSA variable between them.
//!
//! The frontend emits disjoint setup/launch/await clusters (Figure 6). This
//! pass connects them: within straight-line code it adds the previous live
//! state as an input to each setup; across `scf.for` it threads the state
//! through a new loop iteration argument (inserting an empty setup before
//! the loop when no state is live yet — exactly the `%state = accfg.setup
//! to ()` of Figure 9); across `scf.if` it adds a state result fed from both
//! branches. Unknown ops (unannotated calls, opaque ops) are assumed to
//! clobber all accelerator state, per the paper's pessimistic default.

use crate::dialect::{
    self, make_setup, setup_input_state, setup_set_input_state, setup_state, StateEffect,
};
use accfg_ir::{BlockId, Module, OpId, Opcode, Pass, Type, ValueId};
use std::collections::HashMap;

/// Per-accelerator live configuration state at a program point.
type LiveStates = HashMap<String, ValueId>;

/// The state-tracing pass (step 2 of the pipeline in Figure 8).
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceStates;

impl Pass for TraceStates {
    fn name(&self) -> &str {
        "accfg-trace-states"
    }

    fn run(&self, m: &mut Module) -> accfg_ir::Changed {
        let mut changed = false;
        for func in m.funcs().to_vec() {
            let block = m.body_block(func, 0);
            let mut live = LiveStates::new();
            changed |= trace_block(m, block, &mut live);
        }
        changed.into()
    }
}

/// Traces one block, updating `live` in place. Returns whether IR changed.
fn trace_block(m: &mut Module, block: BlockId, live: &mut LiveStates) -> bool {
    let mut changed = false;
    for op in m.block_ops(block) {
        if !m.is_alive(op) {
            continue;
        }
        match m.op(op).opcode {
            Opcode::AccfgSetup => {
                let accel = dialect::accelerator(m, op);
                if setup_input_state(m, op).is_none() {
                    if let Some(&prev) = live.get(&accel) {
                        setup_set_input_state(m, op, Some(prev));
                        changed = true;
                    }
                }
                live.insert(accel, setup_state(m, op));
            }
            Opcode::AccfgLaunch | Opcode::AccfgAwait => {}
            Opcode::For => {
                changed |= trace_for(m, op, live);
            }
            Opcode::If => {
                changed |= trace_if(m, op, live);
            }
            _ => match dialect::state_effect(m, op) {
                StateEffect::Preserves => {}
                _ => live.clear(),
            },
        }
    }
    changed
}

/// Accelerators that have at least one setup in the subtree under `root`.
fn accels_with_setups(m: &Module, root: OpId) -> Vec<String> {
    let mut names: Vec<String> = m
        .walk_collect(root)
        .into_iter()
        .filter(|&o| m.op(o).opcode == Opcode::AccfgSetup)
        .filter_map(|o| m.str_attr(o, "accelerator").map(str::to_string))
        .collect();
    names.sort();
    names.dedup();
    names
}

fn trace_for(m: &mut Module, for_op: OpId, live: &mut LiveStates) -> bool {
    if dialect::subtree_has_clobber(m, for_op) {
        // iteration entry state is unknown; trace the body standalone so its
        // straight-line chains still connect, then forget everything
        let body = m.body_block(for_op, 0);
        let mut inner = LiveStates::new();
        let changed = trace_block(m, body, &mut inner);
        live.clear();
        return changed;
    }
    let accels = accels_with_setups(m, for_op);
    if accels.is_empty() {
        // nothing to thread; body can still use outer live states read-only
        let body = m.body_block(for_op, 0);
        let mut inner = live.clone();
        let changed = trace_block(m, body, &mut inner);
        // no setups inside, so outer states survive unchanged
        return changed;
    }
    // ensure a live state exists before the loop for each threaded accel
    // (the `%state = accfg.setup to ()` of Figure 9)
    let block = m.op(for_op).parent.expect("loop is attached");
    let pos = m.op_position(for_op).expect("loop is attached");
    let mut inits = Vec::new();
    for accel in &accels {
        let init = match live.get(accel) {
            Some(&s) => s,
            None => {
                let empty = make_setup(m, accel, None, &[]);
                m.insert_op(block, pos, empty);
                setup_state(m, empty)
            }
        };
        inits.push(init);
    }

    // rebuild the loop with one extra iter-arg per accelerator
    let mut operands = m.op(for_op).operands.clone();
    operands.extend(inits.iter().copied());
    let extra_types: Vec<Type> = accels.iter().map(Type::state).collect();
    let old_result_count = m.op(for_op).results.len();
    let new_for = m.rebuild_op(for_op, operands, extra_types);

    let body = m.body_block(new_for, 0);
    let mut body_live = live.clone();
    let mut args = Vec::new();
    for accel in &accels {
        let arg = m.add_block_arg(body, Type::state(accel));
        body_live.insert(accel.clone(), arg);
        args.push(arg);
    }

    trace_block(m, body, &mut body_live);

    // yield the body's final state for each accel (at minimum the block arg)
    let yield_op = m.terminator(body);
    let mut yield_operands = m.op(yield_op).operands.clone();
    for (accel, arg) in accels.iter().zip(args.iter()) {
        yield_operands.push(*body_live.get(accel).copied().as_ref().unwrap_or(arg));
    }
    m.set_operands(yield_op, yield_operands);

    // after the loop, the live state is the loop's new result
    for (i, accel) in accels.iter().enumerate() {
        let result = m.op(new_for).results[old_result_count + i];
        live.insert(accel.clone(), result);
    }
    true
}

fn trace_if(m: &mut Module, if_op: OpId, live: &mut LiveStates) -> bool {
    if dialect::subtree_has_clobber(m, if_op) {
        for ri in 0..2 {
            let block = m.body_block(if_op, ri);
            let mut inner = LiveStates::new();
            trace_block(m, block, &mut inner);
        }
        live.clear();
        return true;
    }
    let accels = accels_with_setups(m, if_op);
    if accels.is_empty() {
        let mut changed = false;
        for ri in 0..2 {
            let block = m.body_block(if_op, ri);
            let mut inner = live.clone();
            changed |= trace_block(m, block, &mut inner);
        }
        return changed;
    }
    let mut changed = false;
    let mut branch_final: Vec<LiveStates> = Vec::with_capacity(2);
    for ri in 0..2 {
        let block = m.body_block(if_op, ri);
        let mut inner = live.clone();
        changed |= trace_block(m, block, &mut inner);
        branch_final.push(inner);
    }

    // accels whose state is known at the end of *both* branches get threaded
    // through new if-results; everything else becomes unknown after the if
    let mut threaded = Vec::new();
    for accel in &accels {
        match (branch_final[0].get(accel), branch_final[1].get(accel)) {
            (Some(&a), Some(&b)) => threaded.push((accel.clone(), a, b)),
            _ => {
                live.remove(accel);
            }
        }
    }
    if threaded.is_empty() {
        return changed;
    }

    let old_result_count = m.op(if_op).results.len();
    let operands = m.op(if_op).operands.clone();
    let extra_types: Vec<Type> = threaded.iter().map(|(a, _, _)| Type::state(a)).collect();
    let new_if = m.rebuild_op(if_op, operands, extra_types);
    for (ri, pick) in [0usize, 1].iter().enumerate() {
        let block = m.body_block(new_if, *pick);
        let yield_op = m.terminator(block);
        let mut yield_operands = m.op(yield_op).operands.clone();
        for (_, a, b) in &threaded {
            yield_operands.push(if ri == 0 { *a } else { *b });
        }
        m.set_operands(yield_op, yield_operands);
    }
    for (i, (accel, _, _)) in threaded.iter().enumerate() {
        let result = m.op(new_if).results[old_result_count + i];
        live.insert(accel.clone(), result);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::interpret;
    use accfg_ir::{print_module, verify, FuncBuilder, Type};

    fn run_trace(m: &mut Module) {
        TraceStates.run(m);
        verify(m).expect("traced IR verifies");
    }

    #[test]
    fn connects_straight_line_setups() {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let x = b.const_index(1);
        let s1 = b.setup("acc", &[("a", x)]);
        let t1 = b.launch("acc", s1);
        b.await_token("acc", t1);
        let s2 = b.setup("acc", &[("b", x)]); // no input: should get s1
        let t2 = b.launch("acc", s2);
        b.await_token("acc", t2);
        b.ret(vec![]);

        let before = interpret(&m, "f", &[], 1000).unwrap();
        run_trace(&mut m);
        let after = interpret(&m, "f", &[], 1000).unwrap();
        assert_eq!(before.launches, after.launches);

        let text = print_module(&m);
        assert!(text.contains("from"), "{text}");
    }

    #[test]
    fn threads_state_through_loops() {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let lb = b.const_index(0);
        let ub = b.const_index(4);
        let one = b.const_index(1);
        b.build_for(lb, ub, one, vec![], |b, iv, _| {
            let s = b.setup("acc", &[("i", iv)]);
            let t = b.launch("acc", s);
            b.await_token("acc", t);
            vec![]
        });
        b.ret(vec![]);

        let before = interpret(&m, "f", &[], 10_000).unwrap();
        run_trace(&mut m);
        let after = interpret(&m, "f", &[], 10_000).unwrap();
        assert_eq!(before.launches, after.launches);

        let text = print_module(&m);
        // Figure 9: an empty setup appears before the loop, and the loop
        // carries the state in iter_args
        assert!(text.contains("accfg.setup \"acc\" to ()"), "{text}");
        assert!(text.contains("iter_args"), "{text}");
        assert!(text.contains("-> (!accfg.state<\"acc\">)"), "{text}");
        // the in-loop setup is now chained from the iteration argument
        assert!(text.contains("accfg.setup \"acc\" from"), "{text}");
    }

    #[test]
    fn reuses_live_state_before_loop() {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let x = b.const_index(7);
        let s0 = b.setup("acc", &[("cfg", x)]);
        let t0 = b.launch("acc", s0);
        b.await_token("acc", t0);
        let lb = b.const_index(0);
        let ub = b.const_index(2);
        let one = b.const_index(1);
        b.build_for(lb, ub, one, vec![], |b, iv, _| {
            let s = b.setup("acc", &[("i", iv)]);
            let t = b.launch("acc", s);
            b.await_token("acc", t);
            vec![]
        });
        b.ret(vec![]);

        let before = interpret(&m, "f", &[], 10_000).unwrap();
        run_trace(&mut m);
        let after = interpret(&m, "f", &[], 10_000).unwrap();
        assert_eq!(before.launches, after.launches);
        let text = print_module(&m);
        // no extra empty setup: s0 is the init
        assert!(!text.contains("to ()"), "{text}");
    }

    #[test]
    fn threads_state_through_if() {
        let mut m = Module::new();
        let (mut b, args) = FuncBuilder::new_func(&mut m, "f", vec![Type::I1]);
        let x = b.const_index(1);
        let y = b.const_index(2);
        let s0 = b.setup("acc", &[("base", x)]);
        let t0 = b.launch("acc", s0);
        b.await_token("acc", t0);
        b.build_if(
            args[0],
            |b| {
                let s = b.setup("acc", &[("mode", x)]);
                let t = b.launch("acc", s);
                b.await_token("acc", t);
                vec![]
            },
            |b| {
                let s = b.setup("acc", &[("mode", y)]);
                let t = b.launch("acc", s);
                b.await_token("acc", t);
                vec![]
            },
        );
        // post-if setup: should chain from the new if state result
        let s2 = b.setup("acc", &[("post", y)]);
        let t2 = b.launch("acc", s2);
        b.await_token("acc", t2);
        b.ret(vec![]);

        for arg in [0, 1] {
            let before = interpret(&m, "f", &[arg], 10_000).unwrap();
            let mut m2 = m.clone();
            run_trace(&mut m2);
            let after = interpret(&m2, "f", &[arg], 10_000).unwrap();
            assert_eq!(before.launches, after.launches, "arg={arg}");
        }
        run_trace(&mut m);
        let text = print_module(&m);
        assert!(
            text.contains("scf.if %0 -> (!accfg.state<\"acc\">)"),
            "{text}"
        );
    }

    #[test]
    fn clobbers_break_chains() {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let x = b.const_index(1);
        let s1 = b.setup("acc", &[("a", x)]);
        let t1 = b.launch("acc", s1);
        b.await_token("acc", t1);
        b.call("mystery", vec![], vec![]);
        let s2 = b.setup("acc", &[("b", x)]);
        let t2 = b.launch("acc", s2);
        b.await_token("acc", t2);
        b.ret(vec![]);
        run_trace(&mut m);
        let text = print_module(&m);
        // the second setup must NOT be chained across the call
        assert_eq!(text.matches("from").count(), 0, "{text}");
    }

    #[test]
    fn clobber_inside_loop_prevents_threading() {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let lb = b.const_index(0);
        let ub = b.const_index(2);
        let one = b.const_index(1);
        b.build_for(lb, ub, one, vec![], |b, iv, _| {
            b.call("mystery", vec![], vec![]);
            let s = b.setup("acc", &[("i", iv)]);
            let t = b.launch("acc", s);
            b.await_token("acc", t);
            vec![]
        });
        b.ret(vec![]);
        run_trace(&mut m);
        let text = print_module(&m);
        assert!(!text.contains("iter_args"), "{text}");
        let before = interpret(&m, "f", &[], 10_000).unwrap();
        assert_eq!(before.launches.len(), 2);
    }

    #[test]
    fn nested_loops_thread_through_both_levels() {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let lb = b.const_index(0);
        let ub = b.const_index(2);
        let one = b.const_index(1);
        b.build_for(lb, ub, one, vec![], |b, i, _| {
            b.build_for(lb, ub, one, vec![], |b, j, _| {
                let s = b.setup("acc", &[("i", i), ("j", j)]);
                let t = b.launch("acc", s);
                b.await_token("acc", t);
                vec![]
            });
            vec![]
        });
        b.ret(vec![]);

        let before = interpret(&m, "f", &[], 10_000).unwrap();
        run_trace(&mut m);
        let after = interpret(&m, "f", &[], 10_000).unwrap();
        assert_eq!(before.launches, after.launches);
        let text = print_module(&m);
        assert_eq!(text.matches("iter_args").count(), 2, "{text}");
    }

    #[test]
    fn multiple_accelerators_thread_independently() {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let lb = b.const_index(0);
        let ub = b.const_index(2);
        let one = b.const_index(1);
        b.build_for(lb, ub, one, vec![], |b, iv, _| {
            let s1 = b.setup("north", &[("i", iv)]);
            let t1 = b.launch("north", s1);
            b.await_token("north", t1);
            let s2 = b.setup("south", &[("i", iv)]);
            let t2 = b.launch("south", s2);
            b.await_token("south", t2);
            vec![]
        });
        b.ret(vec![]);
        let before = interpret(&m, "f", &[], 10_000).unwrap();
        run_trace(&mut m);
        let after = interpret(&m, "f", &[], 10_000).unwrap();
        assert_eq!(before.launches, after.launches);
        let text = print_module(&m);
        assert!(
            text.contains("!accfg.state<\"north\">, !accfg.state<\"south\">"),
            "{text}"
        );
    }
}
