//! Configuration–computation overlap (Section 5.5): schedule configuration
//! to run *while the accelerator is busy*, for concurrent-configuration
//! systems (Section 2.2).
//!
//! Two cooperating rewrites, exactly as the paper describes:
//!
//! 1. [`RotateLoops`] — software pipelining. A loop whose body is
//!    `setup → launch → await` is rotated so each iteration launches the
//!    state prepared by the *previous* one: a copy of the setup sequence
//!    (with the induction variable replaced by the lower bound) primes the
//!    pipeline before the loop, and the in-loop setup switches to an
//!    incremented induction variable (Figure 9, right).
//! 2. [`OverlapInBlock`] — the "relatively simple block-level rewrite":
//!    a setup whose input state was launched and awaited earlier in the same
//!    block moves (together with the pure ops computing its inputs) up in
//!    front of that await, hiding configuration behind execution.
//!
//! Only pure setup-input cones are moved (the paper's purity check); any
//! impure producer blocks the rewrite.

use crate::dialect::{self, setup_fields, setup_input_state, setup_state};
use accfg_ir::{BlockId, Changed, Module, OpId, Opcode, Pass, Type, ValueId};
use std::collections::{HashMap, HashSet};

/// Which accelerators an overlap pass may touch. Overlap is only sound on
/// hardware with concurrent configuration support (staging registers), so
/// callers restrict the passes to those targets.
#[derive(Debug, Clone, Default)]
pub enum AccelFilter {
    /// Apply to every accelerator (caller has checked capabilities).
    #[default]
    All,
    /// Apply only to the named accelerators.
    Only(Vec<String>),
}

impl AccelFilter {
    fn allows(&self, accel: &str) -> bool {
        match self {
            AccelFilter::All => true,
            AccelFilter::Only(names) => names.iter().any(|n| n == accel),
        }
    }
}

/// The loop-rotation (software pipelining) half of the overlap optimization.
#[derive(Debug, Clone, Default)]
pub struct RotateLoops {
    /// Restricts rotation to concurrent-configuration accelerators.
    pub filter: AccelFilter,
}

impl RotateLoops {
    /// Rotation restricted to the given accelerators.
    pub fn only(accels: impl IntoIterator<Item = impl Into<String>>) -> Self {
        Self {
            filter: AccelFilter::Only(accels.into_iter().map(Into::into).collect()),
        }
    }
}

impl Pass for RotateLoops {
    fn name(&self) -> &str {
        "accfg-rotate-loops"
    }

    fn run(&self, m: &mut Module) -> Changed {
        let mut changed = Changed::No;
        let loops: Vec<OpId> = m
            .walk_module()
            .into_iter()
            .filter(|&op| m.op(op).opcode == Opcode::For)
            .collect();
        for for_op in loops {
            if m.is_alive(for_op) && rotate(m, for_op, &self.filter) {
                changed = Changed::Yes;
            }
        }
        changed
    }
}

/// The matched body shape of a rotatable loop.
struct LoopShape {
    setup: OpId,
    launch: OpId,
    await_op: OpId,
    /// body block argument carrying the loop state
    state_arg: ValueId,
    state_arg_index: usize,
}

/// The function op enclosing `op`.
fn enclosing_func(m: &Module, op: OpId) -> OpId {
    let mut cur = op;
    while let Some(parent) = m.parent_op(cur) {
        cur = parent;
    }
    cur
}

/// Rotation writes the (never-launched) configuration of the one-past-last
/// iteration into the registers. That is only invisible if every later
/// launch of the accelerator is preceded by the loop's own prologue (i.e.
/// control re-enters this loop and the prologue rewrites exactly the
/// speculated fields) — so we require that *no* launch of this accelerator
/// appears after the loop in the function (pre-order follows execution
/// order in this structured IR).
fn speculation_is_observable(m: &Module, for_op: OpId, accel: &str) -> bool {
    let func = enclosing_func(m, for_op);
    let preorder = m.walk_collect(func);
    let start = preorder
        .iter()
        .position(|&o| o == for_op)
        .expect("loop is in its function");
    let subtree_len = m.walk_collect(for_op).len();
    preorder[start + subtree_len..].iter().any(|&o| {
        m.op(o).opcode == Opcode::AccfgLaunch && m.str_attr(o, "accelerator") == Some(accel)
    })
}

fn match_loop(m: &Module, for_op: OpId, filter: &AccelFilter) -> Option<LoopShape> {
    let body = m.body_block(for_op, 0);
    let ops = m.block_ops(body);
    // exactly one setup / launch / await, everything else pure (+ yield)
    let mut setup = None;
    let mut launch = None;
    let mut await_op = None;
    for &op in &ops {
        match m.op(op).opcode {
            Opcode::AccfgSetup if setup.is_none() => setup = Some(op),
            Opcode::AccfgLaunch if launch.is_none() => launch = Some(op),
            Opcode::AccfgAwait if await_op.is_none() => await_op = Some(op),
            Opcode::Yield => {}
            o if o.is_pure() => {}
            _ => return None,
        }
    }
    let (setup, launch, await_op) = (setup?, launch?, await_op?);
    let accel = dialect::accelerator(m, setup);
    if !filter.allows(&accel) {
        return None;
    }
    if speculation_is_observable(m, for_op, &accel) {
        return None;
    }
    // the setup must chain from the loop's state argument ...
    let state_arg = setup_input_state(m, setup)?;
    let args = m.block(body).args.clone();
    let state_arg_index = args.iter().position(|&a| a == state_arg)?;
    if state_arg_index == 0 {
        return None; // that's the induction variable
    }
    // ... the launch must fire the setup's state, the await its token
    if m.op(launch).operands != vec![setup_state(m, setup)] {
        return None;
    }
    if m.op(launch).results.clone() != m.op(await_op).operands {
        return None;
    }
    // program order: setup < launch < await
    let pos = |op| m.op_position(op).expect("attached");
    if !(pos(setup) < pos(launch) && pos(launch) < pos(await_op)) {
        return None;
    }
    // the next iteration must receive the setup's state
    let yielded = m.op(m.terminator(body)).operands[state_arg_index - 1];
    if yielded != setup_state(m, setup) {
        return None;
    }
    Some(LoopShape {
        setup,
        launch,
        await_op,
        state_arg,
        state_arg_index,
    })
}

/// The pure ops inside the loop body that (transitively) produce the setup's
/// field operands, in block order.
fn setup_cone(m: &Module, body: BlockId, setup: OpId) -> Option<Vec<OpId>> {
    let mut wanted: HashSet<ValueId> = setup_fields(m, setup).iter().map(|(_, v)| *v).collect();
    let mut cone = Vec::new();
    let ops = m.block_ops(body);
    for &op in ops.iter().rev() {
        if op == setup {
            continue;
        }
        let produces_wanted = m.op(op).results.iter().any(|r| wanted.contains(r));
        if !produces_wanted {
            continue;
        }
        if !m.op(op).opcode.is_pure() {
            return None; // impure producer: rotation unsafe
        }
        for &operand in &m.op(op).operands {
            wanted.insert(operand);
        }
        cone.push(op);
    }
    cone.reverse();
    Some(cone)
}

fn rotate(m: &mut Module, for_op: OpId, filter: &AccelFilter) -> bool {
    let Some(shape) = match_loop(m, for_op, filter) else {
        return false;
    };
    let body = m.body_block(for_op, 0);
    let Some(cone) = setup_cone(m, body, shape.setup) else {
        return false;
    };
    let lb = m.op(for_op).operands[0];
    let step = m.op(for_op).operands[2];
    let iv = m.block(body).args[0];
    let init_index = 3 + (shape.state_arg_index - 1);
    let init_state = m.op(for_op).operands[init_index];

    // --- prologue: prime the pipeline with the first iteration's setup -----
    let mut mapping: HashMap<ValueId, ValueId> = HashMap::new();
    mapping.insert(iv, lb);
    mapping.insert(shape.state_arg, init_state);
    for &op in &cone {
        let clone = m.clone_op(op, &mut mapping);
        m.move_op_before(clone, for_op);
    }
    let pre_setup = m.clone_op(shape.setup, &mut mapping);
    m.move_op_before(pre_setup, for_op);
    m.set_operand(for_op, init_index, setup_state(m, pre_setup));

    // --- in-loop: compute the *next* iteration's configuration -------------
    // %iv_next = iv + step, placed at the top of the body
    let add = m.create_op(
        Opcode::AddI,
        vec![iv, step],
        vec![Type::Index],
        Default::default(),
        vec![],
    );
    m.insert_op(body, 0, add);
    let iv_next = m.op(add).results[0];
    // clone the cone with iv -> iv_next (other uses of iv stay untouched)
    let mut next_mapping: HashMap<ValueId, ValueId> = HashMap::new();
    next_mapping.insert(iv, iv_next);
    for &op in &cone {
        let clone = m.clone_op(op, &mut next_mapping);
        m.move_op_before(clone, shape.setup);
    }
    let fields: Vec<(String, ValueId)> = setup_fields(m, shape.setup)
        .into_iter()
        .map(|(n, v)| (n, *next_mapping.get(&v).unwrap_or(&v)))
        .collect();
    dialect::setup_set_fields(m, shape.setup, &fields);

    // --- reorder: launch the previous state first, await after the setup ---
    m.set_operands(shape.launch, vec![shape.state_arg]);
    let first = m.block(body).ops[0];
    if first != shape.launch {
        m.move_op_before(shape.launch, first);
    }
    let yield_op = m.terminator(body);
    m.move_op_before(shape.await_op, yield_op);

    // dead original cone ops are cleaned up by DCE later
    true
}

/// The block-level overlap rewrite: move setup sequences above the await
/// that covers their input state.
///
/// With [`OverlapInBlock::partial`] enabled, a setup whose input cone
/// contains impure producers is *split*: the fields with pure producers
/// move above the await, the rest stay put — the partial motion the paper's
/// Section 5.5 describes as possible but unimplemented ("a partial move of
/// the setup operation could still be performed, although this is not
/// implemented in our current infrastructure").
#[derive(Debug, Clone, Default)]
pub struct OverlapInBlock {
    /// Restricts the rewrite to concurrent-configuration accelerators.
    pub filter: AccelFilter,
    /// Enables splitting setups so the movable fields still overlap.
    pub partial: bool,
}

impl OverlapInBlock {
    /// Overlap restricted to the given accelerators.
    pub fn only(accels: impl IntoIterator<Item = impl Into<String>>) -> Self {
        Self {
            filter: AccelFilter::Only(accels.into_iter().map(Into::into).collect()),
            partial: false,
        }
    }

    /// Overlap with partial setup motion enabled.
    pub fn with_partial_motion() -> Self {
        Self {
            filter: AccelFilter::All,
            partial: true,
        }
    }
}

impl Pass for OverlapInBlock {
    fn name(&self) -> &str {
        "accfg-overlap-in-block"
    }

    fn run(&self, m: &mut Module) -> Changed {
        let mut changed = Changed::No;
        loop {
            let mut moved = false;
            for setup in m.walk_module() {
                if !m.is_alive(setup) || m.op(setup).opcode != Opcode::AccfgSetup {
                    continue;
                }
                if try_move_above_await(m, setup, &self.filter, self.partial) {
                    moved = true;
                    changed = Changed::Yes;
                }
            }
            if !moved {
                break;
            }
        }
        changed
    }
}

fn try_move_above_await(m: &mut Module, setup: OpId, filter: &AccelFilter, partial: bool) -> bool {
    let accel = dialect::accelerator(m, setup);
    if !filter.allows(&accel) {
        return false;
    }
    let Some(input) = setup_input_state(m, setup) else {
        return false;
    };
    // every launch of our input state must stay *before* this setup (each
    // observes the pre-setup registers), so the move target is the await of
    // the LAST such launch. A state is usually launched once, but
    // deduplication can collapse identical setups and leave one state with
    // several launches.
    let launches: Vec<OpId> = m
        .uses_of(input)
        .into_iter()
        .filter_map(|u| (m.op(u.op).opcode == Opcode::AccfgLaunch).then_some(u.op))
        .collect();
    if launches.is_empty() {
        return false;
    }
    // all launches must be in the setup's own block so positions compare
    if launches
        .iter()
        .any(|&l| m.op(l).parent != m.op(setup).parent)
    {
        return false;
    }
    let launch = launches
        .iter()
        .copied()
        .max_by_key(|&l| m.op_position(l).expect("attached"))
        .expect("non-empty");
    let token = m.op(launch).results[0];
    let await_op = m
        .uses_of(token)
        .into_iter()
        .find_map(|u| (m.op(u.op).opcode == Opcode::AccfgAwait).then_some(u.op));
    let Some(await_op) = await_op else {
        return false;
    };

    // same block, await before setup
    let block = m.op(setup).parent;
    if block.is_none() || m.op(await_op).parent != block {
        return false;
    }
    let block = block.expect("checked");
    let await_pos = m.op_position(await_op).expect("attached");
    let setup_pos = m.op_position(setup).expect("attached");
    if await_pos + 1 >= setup_pos {
        return false; // nothing to hide behind (already adjacent or before)
    }

    let between: Vec<OpId> = m.block(block).ops[await_pos + 1..setup_pos].to_vec();
    // never move configuration across anything that may clobber it
    if between
        .iter()
        .any(|&o| dialect::state_effect(m, o) == dialect::StateEffect::Clobbers)
    {
        return false;
    }

    // per-field movability: a field may move if every producer of its value
    // between the await and the setup is pure
    let fields = setup_fields(m, setup);
    let mut movable_fields = Vec::new();
    let mut blocked_fields = Vec::new();
    let mut cone: Vec<OpId> = Vec::new();
    for (name, value) in &fields {
        let mut wanted: HashSet<ValueId> = HashSet::from([*value]);
        let mut field_cone = Vec::new();
        let mut pure = true;
        for &op in between.iter().rev() {
            let produces_wanted = m.op(op).results.iter().any(|r| wanted.contains(r));
            if !produces_wanted {
                continue;
            }
            if !m.op(op).opcode.is_pure() {
                pure = false;
                break;
            }
            for &operand in &m.op(op).operands {
                wanted.insert(operand);
            }
            field_cone.push(op);
        }
        if pure {
            movable_fields.push((name.clone(), *value));
            for op in field_cone {
                if !cone.contains(&op) {
                    cone.push(op);
                }
            }
        } else {
            blocked_fields.push((name.clone(), *value));
        }
    }
    // restore block order for the union cone
    cone.sort_by_key(|&op| m.op_position(op).expect("attached"));

    if blocked_fields.is_empty() {
        // whole setup moves (the original rewrite)
        for op in cone {
            m.move_op_before(op, await_op);
        }
        m.move_op_before(setup, await_op);
        return true;
    }
    if !partial || movable_fields.is_empty() {
        return false;
    }

    // partial motion: split off the movable fields into their own setup
    // chained in front of the remainder, then move only that part
    let movable = dialect::make_setup(m, &accel, Some(input), &movable_fields);
    let movable_state = setup_state(m, movable);
    m.move_op_before(movable, setup);
    dialect::setup_set_input_state(m, setup, Some(movable_state));
    dialect::setup_set_fields(m, setup, &blocked_fields);
    for op in cone {
        m.move_op_before(op, await_op);
    }
    m.move_op_before(movable, await_op);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dedup::{Deduplicate, MergeSetups, RemoveEmptySetups};
    use crate::hoist::HoistInvariantSetupFields;
    use crate::interp::interpret;
    use crate::trace_states::TraceStates;
    use accfg_ir::passes::Dce;
    use accfg_ir::{print_module, verify, FuncBuilder, Type};

    /// Build the canonical tiled loop: per iteration configure (address =
    /// base + 8*i), launch, await.
    fn tiled_loop(trip: i64) -> Module {
        let mut m = Module::new();
        let (mut b, args) = FuncBuilder::new_func(&mut m, "f", vec![Type::I64]);
        let lb = b.const_index(0);
        let ub = b.const_index(trip);
        let one = b.const_index(1);
        b.build_for(lb, ub, one, vec![], |b, iv, _| {
            let eight = b.const_index(8);
            let off = b.muli(iv, eight);
            let addr = b.addi(args[0], off);
            let s = b.setup("acc", &[("addr", addr)]);
            let t = b.launch("acc", s);
            b.await_token("acc", t);
            vec![]
        });
        b.ret(vec![]);
        m
    }

    fn rotate_pipeline(m: &mut Module) {
        TraceStates.run(m);
        RotateLoops::default().run(m);
        Dce.run(m);
        verify(m).expect("rotated IR verifies");
    }

    #[test]
    fn rotation_preserves_launch_traces() {
        let mut m = tiled_loop(5);
        let before = interpret(&m, "f", &[1000], 100_000).unwrap();
        rotate_pipeline(&mut m);
        let after = interpret(&m, "f", &[1000], 100_000).unwrap();
        assert_eq!(before.launches, after.launches);
    }

    #[test]
    fn rotation_produces_figure9_shape() {
        let mut m = tiled_loop(10);
        rotate_pipeline(&mut m);
        let text = print_module(&m);
        // prologue setup before the loop
        let for_pos = text.find("scf.for").unwrap();
        let first_setup = text.find("accfg.setup").unwrap();
        assert!(first_setup < for_pos, "{text}");
        // inside the body: launch comes first, await right before yield
        let body = &text[for_pos..];
        let launch_pos = body.find("accfg.launch").unwrap();
        let setup_pos = body.find("accfg.setup").unwrap();
        let await_pos = body.find("accfg.await").unwrap();
        assert!(launch_pos < setup_pos, "{text}");
        assert!(setup_pos < await_pos, "{text}");
    }

    #[test]
    fn rotation_launches_previous_iteration_state() {
        let mut m = tiled_loop(3);
        TraceStates.run(&mut m);
        assert!(RotateLoops::default().run(&mut m).changed());
        verify(&m).unwrap();
        // the launch now consumes the block argument, not the fresh setup
        let func = m.func_by_name("f").unwrap();
        let launch = m
            .walk_collect(func)
            .into_iter()
            .find(|&o| m.op(o).opcode == Opcode::AccfgLaunch)
            .unwrap();
        let state = m.op(launch).operands[0];
        assert!(matches!(
            m.value(state).def,
            accfg_ir::ValueDef::BlockArg { .. }
        ));
    }

    #[test]
    fn rotation_respects_accelerator_filter() {
        let mut m = tiled_loop(3);
        TraceStates.run(&mut m);
        assert!(!RotateLoops::only(["other"]).run(&mut m).changed());
        assert!(RotateLoops::only(["acc"]).run(&mut m).changed());
    }

    #[test]
    fn impure_body_op_blocks_rotation() {
        let mut m = Module::new();
        let (mut b, _args) = FuncBuilder::new_func(&mut m, "f", vec![Type::I64]);
        let lb = b.const_index(0);
        let ub = b.const_index(4);
        let one = b.const_index(1);
        b.build_for(lb, ub, one, vec![], |b, iv, _| {
            b.call("host_work", vec![iv], vec![]); // impure
            let s = b.setup("acc", &[("i", iv)]);
            let t = b.launch("acc", s);
            b.await_token("acc", t);
            vec![]
        });
        b.ret(vec![]);
        TraceStates.run(&mut m);
        assert!(!RotateLoops::default().run(&mut m).changed());
    }

    #[test]
    fn rotation_composes_with_dedup_and_hoist() {
        let mut m = tiled_loop(6);
        let before = interpret(&m, "f", &[512], 100_000).unwrap();
        TraceStates.run(&mut m);
        HoistInvariantSetupFields.run(&mut m);
        Deduplicate.run(&mut m);
        RemoveEmptySetups.run(&mut m);
        MergeSetups.run(&mut m);
        RotateLoops::default().run(&mut m);
        Dce.run(&mut m);
        verify(&m).unwrap();
        let after = interpret(&m, "f", &[512], 100_000).unwrap();
        assert_eq!(before.launches, after.launches);
    }

    #[test]
    fn block_overlap_moves_setup_above_await() {
        // two chained invocations in straight-line code: the second setup
        // can be configured while the first launch is still running
        let mut m = Module::new();
        let (mut b, args) = FuncBuilder::new_func(&mut m, "f", vec![Type::I64, Type::I64]);
        let s1 = b.setup("acc", &[("addr", args[0])]);
        let t1 = b.launch("acc", s1);
        b.await_token("acc", t1);
        let two = b.const_index(2);
        let scaled = b.muli(args[1], two);
        let s2 = b.setup_from("acc", s1, &[("addr", scaled)]);
        let t2 = b.launch("acc", s2);
        b.await_token("acc", t2);
        b.ret(vec![]);

        let before = interpret(&m, "f", &[10, 20], 1000).unwrap();
        assert!(OverlapInBlock::default().run(&mut m).changed());
        verify(&m).unwrap();
        let after = interpret(&m, "f", &[10, 20], 1000).unwrap();
        assert_eq!(before.launches, after.launches);

        let text = print_module(&m);
        let await1 = text.find("accfg.await").unwrap();
        let setup2 = text[await1..].find("accfg.setup").map(|p| p + await1);
        // the second setup (and its muli) moved above the first await
        let setup_positions: Vec<usize> =
            text.match_indices("accfg.setup").map(|(p, _)| p).collect();
        assert!(setup_positions[1] < await1, "{text}");
        let _ = setup2;
    }

    #[test]
    fn block_overlap_blocked_by_impure_producer() {
        let mut m = Module::new();
        let (mut b, args) = FuncBuilder::new_func(&mut m, "f", vec![Type::I64]);
        let s1 = b.setup("acc", &[("addr", args[0])]);
        let t1 = b.launch("acc", s1);
        b.await_token("acc", t1);
        let v = b.opaque("read_sensor", vec![], vec![Type::I64], None);
        let s2 = b.setup_from("acc", s1, &[("addr", v[0])]);
        let t2 = b.launch("acc", s2);
        b.await_token("acc", t2);
        b.ret(vec![]);
        assert!(!OverlapInBlock::default().run(&mut m).changed());
    }

    #[test]
    fn block_overlap_respects_filter() {
        let mut m = Module::new();
        let (mut b, args) = FuncBuilder::new_func(&mut m, "f", vec![Type::I64]);
        let s1 = b.setup("seq", &[("a", args[0])]);
        let t1 = b.launch("seq", s1);
        b.await_token("seq", t1);
        let s2 = b.setup_from("seq", s1, &[("a", args[0])]);
        let t2 = b.launch("seq", s2);
        b.await_token("seq", t2);
        b.ret(vec![]);
        assert!(!OverlapInBlock::only(["conc"]).run(&mut m).changed());
    }

    #[test]
    fn rotation_blocked_when_later_launch_observes_speculation() {
        // regression (found by proptest): a second loop's launch after the
        // first loop would observe the first rotation's speculative
        // one-past-last configuration of the "i" register
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let lb = b.const_index(0);
        let ub = b.const_index(1);
        let one = b.const_index(1);
        b.build_for(lb, ub, one, vec![], |b, iv, _| {
            let s = b.setup("acc", &[("i", iv)]);
            let t = b.launch("acc", s);
            b.await_token("acc", t);
            vec![]
        });
        b.build_for(lb, ub, one, vec![], |b, _iv, _| {
            let c = b.const_index(7);
            let s = b.setup("acc", &[("j", c)]);
            let t = b.launch("acc", s);
            b.await_token("acc", t);
            vec![]
        });
        b.ret(vec![]);

        let before = interpret(&m, "f", &[], 100_000).unwrap();
        TraceStates.run(&mut m);
        let changed = RotateLoops::default().run(&mut m);
        verify(&m).unwrap();
        let after = interpret(&m, "f", &[], 100_000).unwrap();
        assert_eq!(before.launches, after.launches);
        // the first loop must NOT rotate; the last loop may
        assert!(changed.changed(), "the final loop is still rotatable");
        let text = print_module(&m);
        // unrotated first loop: its "i" setup still precedes its launch
        let i_setup = text.find("(\"i\" =").unwrap();
        let first_launch = text.find("accfg.launch").unwrap();
        assert!(
            i_setup < first_launch,
            "first loop must stay unrotated: {text}"
        );
    }

    #[test]
    fn block_overlap_respects_every_launch_of_a_shared_state() {
        // regression (found by proptest): dedup can leave one state with
        // two launches; the next setup must move above the await of the
        // LAST one, not the first
        let mut m = Module::new();
        let (mut b, args) = FuncBuilder::new_func(&mut m, "f", vec![Type::I64]);
        let s1 = b.setup("acc", &[("addr", args[0])]);
        let t1 = b.launch("acc", s1);
        b.await_token("acc", t1);
        let t2 = b.launch("acc", s1); // same state launched again
        b.await_token("acc", t2);
        let zero = b.const_index(0);
        let s2 = b.setup_from("acc", s1, &[("addr", zero)]);
        let t3 = b.launch("acc", s2);
        b.await_token("acc", t3);
        b.ret(vec![]);

        let before = interpret(&m, "f", &[42], 10_000).unwrap();
        OverlapInBlock::default().run(&mut m);
        verify(&m).unwrap();
        crate::discipline::verify_discipline(&m).unwrap();
        let after = interpret(&m, "f", &[42], 10_000).unwrap();
        assert_eq!(before.launches, after.launches);
    }

    #[test]
    fn partial_motion_splits_and_moves_pure_fields() {
        // "addr" has a pure producer (movable); "mode" comes from an impure
        // read (blocked). Full motion fails; partial motion moves "addr".
        let build = || {
            let mut m = Module::new();
            let (mut b, args) = FuncBuilder::new_func(&mut m, "f", vec![Type::I64]);
            let s1 = b.setup("acc", &[("addr", args[0])]);
            let t1 = b.launch("acc", s1);
            b.await_token("acc", t1);
            let two = b.const_index(2);
            let scaled = b.muli(args[0], two); // pure producer
            let sensor = b.opaque(
                "read_sensor",
                vec![],
                vec![Type::I64],
                Some(accfg_ir::Effects::None), // preserves accfg state, still impure
            );
            let s2 = b.setup_from("acc", s1, &[("addr", scaled), ("mode", sensor[0])]);
            let t2 = b.launch("acc", s2);
            b.await_token("acc", t2);
            b.ret(vec![]);
            m
        };

        let mut full = build();
        assert!(
            !OverlapInBlock::default().run(&mut full).changed(),
            "full motion must be blocked by the impure producer"
        );

        let mut m = build();
        assert!(OverlapInBlock::with_partial_motion().run(&mut m).changed());
        verify(&m).unwrap();
        crate::discipline::verify_discipline(&m).unwrap();
        let text = print_module(&m);
        // the split produced a third setup, and the movable one (with its
        // muli) sits above the first await
        assert_eq!(text.matches("accfg.setup").count(), 3, "{text}");
        let first_await = text.find("accfg.await").unwrap();
        let addr_setup = text.find("to (\"addr\" =").unwrap();
        assert!(addr_setup < first_await, "{text}");
        let mode_pos = text.find("\"mode\" =").unwrap();
        assert!(mode_pos > first_await, "{text}");
    }

    #[test]
    fn setup_never_moves_across_a_clobber() {
        // hand-written chain across an #accfg.effects<all> op: the move
        // would let the clobber poison freshly-written fields
        let mut m = Module::new();
        let (mut b, args) = FuncBuilder::new_func(&mut m, "f", vec![Type::I64]);
        let s1 = b.setup("acc", &[("addr", args[0])]);
        let t1 = b.launch("acc", s1);
        b.await_token("acc", t1);
        b.opaque("smash", vec![], vec![], Some(accfg_ir::Effects::All));
        let s2 = b.setup_from("acc", s1, &[("addr", args[0])]);
        let t2 = b.launch("acc", s2);
        b.await_token("acc", t2);
        b.ret(vec![]);

        let before = interpret(&m, "f", &[5], 10_000).unwrap();
        assert!(!OverlapInBlock::with_partial_motion().run(&mut m).changed());
        let after = interpret(&m, "f", &[5], 10_000).unwrap();
        assert_eq!(before.launches, after.launches);
    }

    #[test]
    fn rotated_loop_still_counts_same_launches() {
        for trip in [1, 2, 7] {
            let mut m = tiled_loop(trip);
            let before = interpret(&m, "f", &[64], 100_000).unwrap();
            rotate_pipeline(&mut m);
            let after = interpret(&m, "f", &[64], 100_000).unwrap();
            assert_eq!(before.launches.len(), trip as usize);
            assert_eq!(before.launches, after.launches, "trip={trip}");
        }
    }
}
