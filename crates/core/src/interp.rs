//! A reference interpreter for accfg-level IR.
//!
//! This is the semantic oracle of the test suite: the observable behaviour
//! of a program is the *sequence of launches*, each with the full contents
//! of the accelerator's configuration registers at launch time (exactly what
//! the hardware sees). Every accfg optimization pass must preserve this
//! trace — deduplication may remove writes, overlap may reorder them, but
//! the register file at each launch must be identical.
//!
//! Configuration registers retain their values across setups (the property
//! deduplication exploits, Section 3.2); clobbering ops (unannotated calls,
//! `#accfg.effects<all>`) poison all registers so that any pass illegally
//! deduplicating across them produces a detectably different trace.

use accfg_ir::passes::eval_binary;
use accfg_ir::{CmpPredicate, Module, OpId, Opcode, ValueId};
use std::collections::{BTreeMap, HashMap};
use std::error::Error;
use std::fmt;

use crate::dialect;

/// The poison value written to every register by a clobbering op.
pub const CLOBBER_POISON: i64 = i64::MIN + 0xC10BB;

/// One recorded `accfg.launch`: which accelerator, and the complete
/// configuration register file it observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaunchRecord {
    /// The launched accelerator.
    pub accelerator: String,
    /// Register name → value at launch time.
    pub registers: BTreeMap<String, i64>,
}

/// The observable result of executing a function.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecTrace {
    /// Launches, in program order.
    pub launches: Vec<LaunchRecord>,
    /// Total number of individual configuration field writes executed.
    /// Deduplication lowers this; it must never raise it between equivalent
    /// programs ... modulo overlap's one extra prologue/epilogue setup.
    pub setup_writes: usize,
    /// Writes whose register already held the identical value — the
    /// ceiling a perfect dynamic elider reaches on this execution, and the
    /// ground truth for the static elidable-write lower bound
    /// (`accfg-analyze`'s `LintReport::elidable_bound`).
    pub elided_writes: usize,
}

/// Why interpretation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// The per-run op budget was exhausted (runaway loop).
    OutOfFuel,
    /// An op that only exists after target lowering was encountered.
    NotAccfgLevel(String),
    /// Wrong number of function arguments.
    ArgCount {
        /// What the function declares.
        expected: usize,
        /// What the caller passed.
        provided: usize,
    },
    /// The named function does not exist.
    NoSuchFunc(String),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::OutOfFuel => write!(f, "interpreter ran out of fuel"),
            InterpError::NotAccfgLevel(op) => {
                write!(f, "op `{op}` cannot be interpreted at accfg level")
            }
            InterpError::ArgCount { expected, provided } => {
                write!(f, "function expects {expected} arguments, got {provided}")
            }
            InterpError::NoSuchFunc(name) => write!(f, "no function named `{name}`"),
        }
    }
}

impl Error for InterpError {}

/// Interprets the function named `name` with integer arguments, returning
/// its launch trace.
///
/// # Errors
///
/// See [`InterpError`]. `fuel` bounds the total op count; use a few million
/// for real workloads.
pub fn interpret(
    m: &Module,
    name: &str,
    args: &[i64],
    fuel: u64,
) -> Result<ExecTrace, InterpError> {
    let func = m
        .func_by_name(name)
        .ok_or_else(|| InterpError::NoSuchFunc(name.to_string()))?;
    let mut interp = Interp {
        m,
        env: HashMap::new(),
        regs: HashMap::new(),
        trace: ExecTrace::default(),
        fuel,
    };
    let block = m.body_block(func, 0);
    let params = m.block(block).args.clone();
    if params.len() != args.len() {
        return Err(InterpError::ArgCount {
            expected: params.len(),
            provided: args.len(),
        });
    }
    for (&p, &a) in params.iter().zip(args.iter()) {
        interp.env.insert(p, a);
    }
    interp.run_block(block)?;
    Ok(interp.trace)
}

struct Interp<'m> {
    m: &'m Module,
    env: HashMap<ValueId, i64>,
    /// accelerator name → persistent configuration register file
    regs: HashMap<String, BTreeMap<String, i64>>,
    trace: ExecTrace,
    fuel: u64,
}

impl<'m> Interp<'m> {
    fn get(&self, v: ValueId) -> i64 {
        // state/token values carry no integer; they default to 0 when (never
        // validly) read as integers
        *self.env.get(&v).unwrap_or(&0)
    }

    /// Runs every op in `block`; returns the yield/return operand values.
    fn run_block(&mut self, block: accfg_ir::BlockId) -> Result<Vec<i64>, InterpError> {
        let mut terminator_values = Vec::new();
        for op in self.m.block_ops(block) {
            if self.fuel == 0 {
                return Err(InterpError::OutOfFuel);
            }
            self.fuel -= 1;
            let opcode = self.m.op(op).opcode;
            match opcode {
                Opcode::Yield | Opcode::Return => {
                    terminator_values = self
                        .m
                        .op(op)
                        .operands
                        .iter()
                        .map(|&v| self.get(v))
                        .collect();
                }
                _ => self.run_op(op)?,
            }
        }
        Ok(terminator_values)
    }

    fn run_op(&mut self, op: OpId) -> Result<(), InterpError> {
        let m = self.m;
        let data = m.op(op);
        let opcode = data.opcode;
        match opcode {
            Opcode::Constant => {
                let v = m.int_attr(op, "value").expect("verified constant");
                self.env.insert(data.results[0], v);
            }
            o if o.is_binary_arith() => {
                let l = self.get(data.operands[0]);
                let r = self.get(data.operands[1]);
                let v = eval_binary(o, l, r).expect("binary arith evaluates");
                self.env.insert(data.results[0], v);
            }
            Opcode::CmpI => {
                let pred = m
                    .str_attr(op, "predicate")
                    .and_then(CmpPredicate::from_name)
                    .expect("verified predicate");
                let l = self.get(data.operands[0]);
                let r = self.get(data.operands[1]);
                self.env.insert(data.results[0], i64::from(pred.eval(l, r)));
            }
            Opcode::Select => {
                let c = self.get(data.operands[0]);
                let v = if c != 0 {
                    self.get(data.operands[1])
                } else {
                    self.get(data.operands[2])
                };
                self.env.insert(data.results[0], v);
            }
            Opcode::AccfgSetup => {
                let accel = dialect::accelerator(m, op);
                let fields = dialect::setup_fields(m, op);
                let file = self.regs.entry(accel).or_default();
                for (name, value_id) in fields {
                    let value = *self.env.get(&value_id).unwrap_or(&0);
                    if file.get(&name) == Some(&value) {
                        self.trace.elided_writes += 1;
                    }
                    file.insert(name, value);
                    self.trace.setup_writes += 1;
                }
            }
            Opcode::AccfgLaunch => {
                let accel = dialect::accelerator(m, op);
                let registers = self.regs.entry(accel.clone()).or_default().clone();
                self.trace.launches.push(LaunchRecord {
                    accelerator: accel,
                    registers,
                });
            }
            Opcode::AccfgAwait => {}
            Opcode::For => {
                let lb = self.get(data.operands[0]);
                let ub = self.get(data.operands[1]);
                let step = self.get(data.operands[2]).max(1);
                let inits: Vec<i64> = data.operands[3..].iter().map(|&v| self.get(v)).collect();
                let body = m.body_block(op, 0);
                let args = m.block(body).args.clone();
                let mut iters = inits;
                let mut iv = lb;
                while iv < ub {
                    self.env.insert(args[0], iv);
                    for (&a, &v) in args[1..].iter().zip(iters.iter()) {
                        self.env.insert(a, v);
                    }
                    iters = self.run_block(body)?;
                    iv += step;
                }
                let results = m.op(op).results.clone();
                for (&r, &v) in results.iter().zip(iters.iter()) {
                    self.env.insert(r, v);
                }
            }
            Opcode::If => {
                let cond = self.get(data.operands[0]);
                let block = m.body_block(op, if cond != 0 { 0 } else { 1 });
                let yields = self.run_block(block)?;
                let results = m.op(op).results.clone();
                for (&r, &v) in results.iter().zip(yields.iter()) {
                    self.env.insert(r, v);
                }
            }
            Opcode::Call | Opcode::Opaque => {
                match dialect::state_effect(m, op) {
                    dialect::StateEffect::Preserves => {}
                    _ => {
                        // poison every known register so illegal dedup
                        // across this op changes the trace
                        for file in self.regs.values_mut() {
                            for v in file.values_mut() {
                                *v = CLOBBER_POISON;
                            }
                        }
                    }
                }
                // foreign results are deterministic zeros
                for &r in &m.op(op).results {
                    self.env.insert(r, 0);
                }
            }
            Opcode::Func | Opcode::Return | Opcode::Yield => unreachable!("handled by caller"),
            Opcode::CsrWrite | Opcode::RoccCmd | Opcode::TargetLaunch | Opcode::TargetAwait => {
                return Err(InterpError::NotAccfgLevel(opcode.name().to_string()))
            }
            _ => unreachable!("exhaustive opcode handling"),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accfg_ir::{Effects, FuncBuilder, Type};

    #[test]
    fn records_launch_snapshots() {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let a = b.const_index(5);
        let c = b.const_index(9);
        let s1 = b.setup("acc", &[("x", a), ("y", c)]);
        let t1 = b.launch("acc", s1);
        b.await_token("acc", t1);
        // second setup only changes y; x is retained by the register file
        let s2 = b.setup_from("acc", s1, &[("y", a)]);
        let t2 = b.launch("acc", s2);
        b.await_token("acc", t2);
        b.ret(vec![]);

        let trace = interpret(&m, "f", &[], 1000).unwrap();
        assert_eq!(trace.launches.len(), 2);
        assert_eq!(trace.launches[0].registers["x"], 5);
        assert_eq!(trace.launches[0].registers["y"], 9);
        assert_eq!(trace.launches[1].registers["x"], 5); // retained
        assert_eq!(trace.launches[1].registers["y"], 5);
        assert_eq!(trace.setup_writes, 3);
    }

    #[test]
    fn loops_iterate_with_iter_args() {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let lb = b.const_index(0);
        let ub = b.const_index(3);
        let one = b.const_index(1);
        b.build_for(lb, ub, one, vec![], |b, iv, _| {
            let s = b.setup("acc", &[("i", iv)]);
            let t = b.launch("acc", s);
            b.await_token("acc", t);
            vec![]
        });
        b.ret(vec![]);
        let trace = interpret(&m, "f", &[], 1000).unwrap();
        assert_eq!(trace.launches.len(), 3);
        for (i, l) in trace.launches.iter().enumerate() {
            assert_eq!(l.registers["i"], i as i64);
        }
    }

    #[test]
    fn if_branches_select_configs() {
        let mut m = Module::new();
        let (mut b, args) = FuncBuilder::new_func(&mut m, "f", vec![Type::I1]);
        let ten = b.const_index(10);
        let twenty = b.const_index(20);
        let chosen = b.build_if(args[0], |_| vec![ten], |_| vec![twenty]);
        let s = b.setup("acc", &[("v", chosen[0])]);
        let t = b.launch("acc", s);
        b.await_token("acc", t);
        b.ret(vec![]);
        let t1 = interpret(&m, "f", &[1], 1000).unwrap();
        let t0 = interpret(&m, "f", &[0], 1000).unwrap();
        assert_eq!(t1.launches[0].registers["v"], 10);
        assert_eq!(t0.launches[0].registers["v"], 20);
    }

    #[test]
    fn clobbers_poison_registers() {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let a = b.const_index(5);
        let s1 = b.setup("acc", &[("x", a)]);
        let t1 = b.launch("acc", s1);
        b.await_token("acc", t1);
        b.call("mystery", vec![], vec![]); // clobber
        let s2 = b.setup_from("acc", s1, &[]);
        let t2 = b.launch("acc", s2);
        b.await_token("acc", t2);
        b.ret(vec![]);
        let trace = interpret(&m, "f", &[], 1000).unwrap();
        assert_eq!(trace.launches[0].registers["x"], 5);
        assert_eq!(trace.launches[1].registers["x"], CLOBBER_POISON);
    }

    #[test]
    fn annotated_calls_preserve_registers() {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let a = b.const_index(5);
        let s1 = b.setup("acc", &[("x", a)]);
        let t1 = b.launch("acc", s1);
        b.await_token("acc", t1);
        b.opaque("printf", vec![], vec![], Some(Effects::None));
        let s2 = b.setup_from("acc", s1, &[]);
        let t2 = b.launch("acc", s2);
        b.await_token("acc", t2);
        b.ret(vec![]);
        let trace = interpret(&m, "f", &[], 1000).unwrap();
        assert_eq!(trace.launches[1].registers["x"], 5);
    }

    #[test]
    fn fuel_bounds_execution() {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let lb = b.const_index(0);
        let ub = b.const_index(1_000_000);
        let one = b.const_index(1);
        b.build_for(lb, ub, one, vec![], |b, iv, _| {
            b.addi(iv, iv);
            vec![]
        });
        b.ret(vec![]);
        assert_eq!(interpret(&m, "f", &[], 100), Err(InterpError::OutOfFuel));
    }

    #[test]
    fn missing_function_and_arg_mismatch() {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![Type::I64]);
        b.ret(vec![]);
        assert!(matches!(
            interpret(&m, "g", &[], 10),
            Err(InterpError::NoSuchFunc(_))
        ));
        assert!(matches!(
            interpret(&m, "f", &[], 10),
            Err(InterpError::ArgCount { .. })
        ));
    }
}
