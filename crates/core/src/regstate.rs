//! Register-state diffing: the dynamic counterpart of [`Deduplicate`].
//!
//! The dedup pass (Section 5.4) removes configuration writes the *compiler*
//! can prove redundant against the state threaded through the SSA graph.
//! The same question recurs at run time — most visibly in a serving runtime
//! dispatching many compiled programs onto one accelerator, where the
//! register file left by the previous request makes part of the next
//! request's configuration redundant. These helpers answer it over concrete
//! register files: given the state an accelerator currently holds and the
//! state a launch must observe, which writes are actually needed?
//!
//! The representation matches the interpreter's launch records
//! ([`LaunchRecord::registers`]): an ordered map from register (field) name
//! to value. [`diff`] is generic over the key so callers tracking hardware
//! register *indices* (e.g. the `accfg-runtime` dispatcher) reuse the same
//! logic.
//!
//! [`Deduplicate`]: crate::dedup::Deduplicate
//! [`LaunchRecord::registers`]: crate::interp::LaunchRecord

use crate::interp::ExecTrace;
use std::collections::BTreeMap;

/// A concrete configuration register file: field name → value.
pub type RegisterFile = BTreeMap<String, i64>;

/// The writes needed to move a register file from `current` to `target`:
/// every `(key, value)` in `target` that `current` does not already hold.
///
/// Registers in `current` but absent from `target` are untouched —
/// configuration registers persist, they are never "unset" (the property
/// deduplication exploits, Section 3.2).
///
/// # Examples
///
/// ```
/// use accfg::regstate::diff;
/// use std::collections::BTreeMap;
///
/// let current = BTreeMap::from([("A".to_string(), 1), ("B".to_string(), 2)]);
/// let target = BTreeMap::from([("A".to_string(), 1), ("B".to_string(), 9)]);
/// assert_eq!(diff(&current, &target), vec![("B".to_string(), 9)]);
/// ```
pub fn diff<K: Ord + Clone>(
    current: &BTreeMap<K, i64>,
    target: &BTreeMap<K, i64>,
) -> Vec<(K, i64)> {
    target
        .iter()
        .filter(|(k, v)| current.get(*k) != Some(*v))
        .map(|(k, v)| (k.clone(), *v))
        .collect()
}

/// Counts the writes [`diff`] would emit without materializing them.
pub fn writes_needed<K: Ord>(current: &BTreeMap<K, i64>, target: &BTreeMap<K, i64>) -> usize {
    target
        .iter()
        .filter(|(k, v)| current.get(*k) != Some(*v))
        .count()
}

/// The minimal per-launch write lists for an execution trace, assuming
/// persistent configuration registers and starting from `initial`.
///
/// This is the dynamic lower bound the dedup pass approaches statically:
/// launch *i*'s list contains exactly the registers whose value differs
/// from the file the previous launch observed. Summing the lengths gives
/// the fewest field writes any correct schedule of the trace can perform.
pub fn launch_write_plan(trace: &ExecTrace, initial: &RegisterFile) -> Vec<Vec<(String, i64)>> {
    let mut resident = initial.clone();
    trace
        .launches
        .iter()
        .map(|launch| {
            let writes = diff(&resident, &launch.registers);
            for (k, v) in &writes {
                resident.insert(k.clone(), *v);
            }
            writes
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::interpret;
    use crate::pipeline::{pipeline, OptLevel};
    use crate::AccelFilter;
    use accfg_ir::{FuncBuilder, Module, Type};

    fn file(pairs: &[(&str, i64)]) -> RegisterFile {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn diff_finds_changed_and_new_registers() {
        let current = file(&[("A", 1), ("B", 2)]);
        let target = file(&[("A", 1), ("B", 3), ("C", 4)]);
        assert_eq!(
            diff(&current, &target),
            vec![("B".to_string(), 3), ("C".to_string(), 4)]
        );
        assert_eq!(writes_needed(&current, &target), 2);
    }

    #[test]
    fn identical_states_need_no_writes() {
        let s = file(&[("A", 1), ("B", 2)]);
        assert!(diff(&s, &s).is_empty());
        assert_eq!(writes_needed(&s, &s), 0);
    }

    #[test]
    fn registers_are_never_unset() {
        let current = file(&[("A", 1), ("B", 2)]);
        let target = file(&[("A", 1)]);
        assert!(diff(&current, &target).is_empty());
    }

    /// A tiled loop whose invariant fields repeat: the dynamic plan should
    /// write them exactly once.
    fn tiled_module() -> Module {
        let mut m = Module::new();
        let (mut b, args) = FuncBuilder::new_func(&mut m, "f", vec![Type::I64]);
        let lb = b.const_index(0);
        let ub = b.const_index(4);
        let one = b.const_index(1);
        b.build_for(lb, ub, one, vec![], |b, iv, _| {
            let sixty_four = b.const_index(64);
            let off = b.muli(iv, sixty_four);
            let a = b.addi(args[0], off);
            let s = b.setup("gemm", &[("A", a), ("size", sixty_four)]);
            let t = b.launch("gemm", s);
            b.await_token("gemm", t);
            vec![]
        });
        b.ret(vec![]);
        m
    }

    #[test]
    fn plan_writes_invariant_fields_once() {
        let m = tiled_module();
        let trace = interpret(&m, "f", &[0x1000], 100_000).unwrap();
        let plan = launch_write_plan(&trace, &RegisterFile::new());
        assert_eq!(plan.len(), 4);
        // first launch configures both fields, later ones only the address
        assert_eq!(plan[0].len(), 2);
        for writes in &plan[1..] {
            assert_eq!(writes.len(), 1);
            assert_eq!(writes[0].0, "A");
        }
    }

    #[test]
    fn plan_respects_initial_state() {
        let m = tiled_module();
        let trace = interpret(&m, "f", &[0x1000], 100_000).unwrap();
        // a resident file already holding the invariant field and the first
        // tile's address: the first launch needs nothing at all
        let resident = file(&[("size", 64), ("A", 0x1000)]);
        let plan = launch_write_plan(&trace, &resident);
        assert!(plan[0].is_empty(), "{:?}", plan[0]);
    }

    #[test]
    fn dynamic_plan_lower_bounds_the_dedup_pass() {
        let mut deduped = tiled_module();
        pipeline(OptLevel::Dedup, AccelFilter::All)
            .run(&mut deduped)
            .unwrap();
        let dedup_trace = interpret(&deduped, "f", &[0x1000], 100_000).unwrap();

        let trace = interpret(&tiled_module(), "f", &[0x1000], 100_000).unwrap();
        let dynamic: usize = launch_write_plan(&trace, &RegisterFile::new())
            .iter()
            .map(Vec::len)
            .sum();
        assert!(dynamic <= dedup_trace.setup_writes);
        // and both observe the same launch traces
        assert_eq!(trace.launches, dedup_trace.launches);
    }
}
