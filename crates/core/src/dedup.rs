//! Configuration deduplication (Section 5.4): remove writes of values that
//! the accelerator's configuration registers already hold.
//!
//! The analysis walks the use-def chain of state values backwards to build,
//! for every `accfg.setup`, a map of fields whose contents are statically
//! known at its input. SSA-value equality is the proxy for runtime-value
//! equality (Section 5.4: "the same SSA-value will always contain the same
//! value at runtime"). Loop-carried states are solved with a shrinking
//! fixpoint: the registers known at loop entry are the intersection of what
//! is known at the initial state and at the back-edge (yield) state.
//!
//! Two cleanup rewrites from the paper follow: [`RemoveEmptySetups`] and
//! [`MergeSetups`].

use crate::dialect::{
    self, setup_fields, setup_input_state, setup_set_fields, setup_set_input_state, setup_state,
    StateEffect,
};
use accfg_ir::{Changed, Module, OpId, Opcode, Pass, ValueDef, ValueId};
use std::collections::HashMap;

/// Field name → the SSA value known to be in the register.
type FieldMap = HashMap<String, ValueId>;

/// Assumptions for loop-carried state values during the fixpoint.
type Assumptions = HashMap<ValueId, FieldMap>;

/// The configuration-deduplication pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct Deduplicate;

impl Pass for Deduplicate {
    fn name(&self) -> &str {
        "accfg-dedup"
    }

    fn run(&self, m: &mut Module) -> Changed {
        let mut changed = Changed::No;
        for op in m.walk_module() {
            if !m.is_alive(op) || m.op(op).opcode != Opcode::AccfgSetup {
                continue;
            }
            let Some(input) = setup_input_state(m, op) else {
                continue;
            };
            let known = known_fields(m, input, &mut Assumptions::new());
            let fields = setup_fields(m, op);
            let retained: Vec<(String, ValueId)> = fields
                .iter()
                .filter(|(name, value)| known.get(name) != Some(value))
                .cloned()
                .collect();
            if retained.len() < fields.len() {
                setup_set_fields(m, op, &retained);
                changed = Changed::Yes;
            }
        }
        changed
    }
}

/// Computes the register contents statically known in `state`.
///
/// `assumptions` carries optimistic in-progress facts for loop block
/// arguments, refined by the shrinking fixpoint in `block_arg_fields`.
pub fn known_fields(m: &Module, state: ValueId, assumptions: &mut Assumptions) -> FieldMap {
    if let Some(a) = assumptions.get(&state) {
        return a.clone();
    }
    match m.value(state).def {
        ValueDef::OpResult { op, index } => match m.op(op).opcode {
            Opcode::AccfgSetup => {
                let mut known = match setup_input_state(m, op) {
                    Some(input) => known_fields(m, input, assumptions),
                    None => FieldMap::new(),
                };
                for (name, value) in setup_fields(m, op) {
                    known.insert(name, value);
                }
                known
            }
            Opcode::If => {
                let a = branch_yield_operand(m, op, 0, index as usize);
                let b = branch_yield_operand(m, op, 1, index as usize);
                let ka = known_fields(m, a, assumptions);
                let kb = known_fields(m, b, assumptions);
                intersect(&ka, &kb)
            }
            Opcode::For => {
                // state after the loop = state at the back edge, but the
                // loop may run zero iterations, so intersect with the init
                let init = m.op(op).operands[3 + index as usize];
                let body = m.body_block(op, 0);
                let yielded = m.op(m.terminator(body)).operands[index as usize];
                let arg = m.block(body).args[1 + index as usize];
                let entry = block_arg_fields(m, arg, init, yielded, assumptions);
                assumptions.insert(arg, entry);
                let kb = known_fields(m, yielded, assumptions);
                assumptions.remove(&arg);
                let ki = known_fields(m, init, assumptions);
                intersect(&ki, &kb)
            }
            _ => FieldMap::new(),
        },
        ValueDef::BlockArg { block, index } => {
            let Some(owner) = m.block_parent_op(block) else {
                return FieldMap::new(); // function argument: nothing known
            };
            if m.op(owner).opcode != Opcode::For || index == 0 {
                return FieldMap::new();
            }
            let init = m.op(owner).operands[3 + (index as usize - 1)];
            let yielded = m.op(m.terminator(block)).operands[index as usize - 1];
            block_arg_fields(m, state, init, yielded, assumptions)
        }
    }
}

/// Shrinking fixpoint for a loop-carried state block argument: start from
/// everything known at the init state, then repeatedly intersect with what
/// the back edge provides under the current assumption, until stable.
fn block_arg_fields(
    m: &Module,
    arg: ValueId,
    init: ValueId,
    yielded: ValueId,
    assumptions: &mut Assumptions,
) -> FieldMap {
    if let Some(a) = assumptions.get(&arg) {
        return a.clone();
    }
    let mut current = known_fields(m, init, assumptions);
    loop {
        assumptions.insert(arg, current.clone());
        let back = known_fields(m, yielded, assumptions);
        assumptions.remove(&arg);
        let next = intersect(&current, &back);
        if next == current {
            return current;
        }
        current = next;
    }
}

fn branch_yield_operand(m: &Module, if_op: OpId, region: usize, index: usize) -> ValueId {
    let block = m.body_block(if_op, region);
    m.op(m.terminator(block)).operands[index]
}

fn intersect(a: &FieldMap, b: &FieldMap) -> FieldMap {
    a.iter()
        .filter(|(k, v)| b.get(*k) == Some(v))
        .map(|(k, v)| (k.clone(), *v))
        .collect()
}

/// Removes `accfg.setup` ops that write no fields (Section 5.4.1's first
/// cleanup): a field-less setup with an input state is the identity and its
/// result can be replaced by that input; a field-less, input-less setup with
/// no uses is simply dead.
#[derive(Debug, Clone, Copy, Default)]
pub struct RemoveEmptySetups;

impl Pass for RemoveEmptySetups {
    fn name(&self) -> &str {
        "accfg-remove-empty-setups"
    }

    fn run(&self, m: &mut Module) -> Changed {
        let mut changed = Changed::No;
        for op in m.walk_module() {
            if !m.is_alive(op) || m.op(op).opcode != Opcode::AccfgSetup {
                continue;
            }
            if !setup_fields(m, op).is_empty() {
                continue;
            }
            let state = setup_state(m, op);
            match setup_input_state(m, op) {
                Some(input) => {
                    m.replace_all_uses(state, input);
                    m.erase_op(op);
                    changed = Changed::Yes;
                }
                None => {
                    // an input-less empty setup carries no information: any
                    // setup chained from it can simply drop its input
                    for u in m.uses_of(state) {
                        if m.op(u.op).opcode == Opcode::AccfgSetup
                            && u.operand_index == 0
                            && setup_input_state(m, u.op) == Some(state)
                        {
                            setup_set_input_state(m, u.op, None);
                            changed = Changed::Yes;
                        }
                    }
                    if m.uses_of(state).is_empty() {
                        m.erase_op(op);
                        changed = Changed::Yes;
                    }
                }
            }
        }
        changed
    }
}

/// Merges chained setups with no launch in between (Section 5.4.1's second
/// cleanup): if setup `S2` consumes the state of `S1`, `S1`'s state has no
/// other user, both sit in the same block, and nothing between them clobbers
/// accelerator state, then the two register-write groups collapse into one
/// setup at `S2`'s position (later writes win on name collisions).
#[derive(Debug, Clone, Copy, Default)]
pub struct MergeSetups;

impl Pass for MergeSetups {
    fn name(&self) -> &str {
        "accfg-merge-setups"
    }

    fn run(&self, m: &mut Module) -> Changed {
        let mut changed = Changed::No;
        // repeat so chains of three or more setups collapse fully
        loop {
            let mut merged_any = false;
            for s2 in m.walk_module() {
                if !m.is_alive(s2) || m.op(s2).opcode != Opcode::AccfgSetup {
                    continue;
                }
                if try_merge_into(m, s2) {
                    merged_any = true;
                    changed = Changed::Yes;
                }
            }
            if !merged_any {
                break;
            }
        }
        changed
    }
}

fn try_merge_into(m: &mut Module, s2: OpId) -> bool {
    let Some(input) = setup_input_state(m, s2) else {
        return false;
    };
    let ValueDef::OpResult { op: s1, .. } = m.value(input).def else {
        return false;
    };
    if m.op(s1).opcode != Opcode::AccfgSetup {
        return false;
    }
    // S1's state must feed only S2
    if m.uses_of(input).len() != 1 {
        return false;
    }
    // same block, nothing in between that could clobber accelerator state
    let (Some(b1), Some(b2)) = (m.op(s1).parent, m.op(s2).parent) else {
        return false;
    };
    if b1 != b2 {
        return false;
    }
    let p1 = m.op_position(s1).expect("attached");
    let p2 = m.op_position(s2).expect("attached");
    if p1 >= p2 {
        return false;
    }
    let between = &m.block(b1).ops[p1 + 1..p2];
    if between
        .iter()
        .any(|&o| dialect::state_effect(m, o) == StateEffect::Clobbers)
    {
        return false;
    }

    // merged field list: S1's fields, overridden/extended by S2's
    let mut merged = setup_fields(m, s1);
    for (name, value) in setup_fields(m, s2) {
        if let Some(slot) = merged.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value;
        } else {
            merged.push((name, value));
        }
    }
    let s1_input = setup_input_state(m, s1);
    setup_set_input_state(m, s2, s1_input);
    setup_set_fields(m, s2, &merged);
    m.erase_op(s1);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::interpret;
    use crate::trace_states::TraceStates;
    use accfg_ir::{parse_module, print_module, verify, FuncBuilder};

    fn dedup_all(m: &mut Module) {
        TraceStates.run(m);
        Deduplicate.run(m);
        RemoveEmptySetups.run(m);
        MergeSetups.run(m);
        accfg_ir::passes::Dce.run(m);
        verify(m).expect("deduped IR verifies");
    }

    #[test]
    fn removes_repeated_field_writes() {
        let text = r#"
        func.func @f(%p: i64) {
          %c = arith.constant() {value = 3} : i64
          %s1 = accfg.setup "acc" to ("A" = %p, "mode" = %c) : !accfg.state<"acc">
          %t1 = accfg.launch "acc" with %s1 : !accfg.token<"acc">
          accfg.await "acc" %t1
          %s2 = accfg.setup "acc" from %s1 to ("A" = %p, "mode" = %c) : !accfg.state<"acc">
          %t2 = accfg.launch "acc" with %s2 : !accfg.token<"acc">
          accfg.await "acc" %t2
          func.return()
        }
        "#;
        let mut m = parse_module(text).unwrap();
        let before = interpret(&m, "f", &[42], 1000).unwrap();
        dedup_all(&mut m);
        let after = interpret(&m, "f", &[42], 1000).unwrap();
        assert_eq!(before.launches, after.launches);
        assert_eq!(before.setup_writes, 4);
        assert_eq!(after.setup_writes, 2); // second setup fully deduplicated
    }

    #[test]
    fn keeps_changed_fields() {
        let text = r#"
        func.func @f(%p: i64, %q: i64) {
          %s1 = accfg.setup "acc" to ("A" = %p) : !accfg.state<"acc">
          %t1 = accfg.launch "acc" with %s1 : !accfg.token<"acc">
          accfg.await "acc" %t1
          %s2 = accfg.setup "acc" from %s1 to ("A" = %q) : !accfg.state<"acc">
          %t2 = accfg.launch "acc" with %s2 : !accfg.token<"acc">
          accfg.await "acc" %t2
          func.return()
        }
        "#;
        let mut m = parse_module(text).unwrap();
        let before = interpret(&m, "f", &[1, 2], 1000).unwrap();
        dedup_all(&mut m);
        let after = interpret(&m, "f", &[1, 2], 1000).unwrap();
        assert_eq!(before.launches, after.launches);
        assert_eq!(after.setup_writes, 2); // both writes necessary
    }

    #[test]
    fn dedups_loop_invariant_fields_carried_by_iter_args() {
        // after tracing, the loop state is an iter_arg; the "A" field is
        // written every iteration with the same SSA value -> all but the
        // first write are redundant
        let mut m = Module::new();
        let (mut b, args) = FuncBuilder::new_func(&mut m, "f", vec![accfg_ir::Type::I64]);
        let lb = b.const_index(0);
        let ub = b.const_index(4);
        let one = b.const_index(1);
        b.build_for(lb, ub, one, vec![], |b, iv, _| {
            let s = b.setup("acc", &[("A", args[0]), ("i", iv)]);
            let t = b.launch("acc", s);
            b.await_token("acc", t);
            vec![]
        });
        b.ret(vec![]);

        let before = interpret(&m, "f", &[9], 10_000).unwrap();
        assert_eq!(before.setup_writes, 8);

        TraceStates.run(&mut m);
        verify(&m).unwrap();
        Deduplicate.run(&mut m);
        verify(&m).unwrap();
        let after = interpret(&m, "f", &[9], 10_000).unwrap();
        assert_eq!(before.launches, after.launches);
        // "A" deduplicated in iterations 2..4 — but kept in iteration 1?
        // No: the loop-entry intersection includes the init (empty setup),
        // where "A" is unknown, so the in-loop write stays. The hoist pass
        // (not run here) is what moves it out. Writes: 4×i + 4×A = 8 → the
        // dedup alone cannot remove loop writes without hoisting.
        assert_eq!(after.setup_writes, 8);
    }

    #[test]
    fn dedups_across_if_join_when_both_branches_agree() {
        let text = r#"
        func.func @f(%c: i1, %p: i64) {
          %k = arith.constant() {value = 5} : i64
          %s0 = accfg.setup "acc" to ("base" = %p) : !accfg.state<"acc">
          %t0 = accfg.launch "acc" with %s0 : !accfg.token<"acc">
          accfg.await "acc" %t0
          %s3 = scf.if %c -> (!accfg.state<"acc">) then {
            %s1 = accfg.setup "acc" from %s0 to ("mode" = %k) : !accfg.state<"acc">
            scf.yield(%s1)
          } else {
            %s2 = accfg.setup "acc" from %s0 to ("mode" = %k) : !accfg.state<"acc">
            scf.yield(%s2)
          }
          %s4 = accfg.setup "acc" from %s3 to ("base" = %p, "mode" = %k) : !accfg.state<"acc">
          %t4 = accfg.launch "acc" with %s4 : !accfg.token<"acc">
          accfg.await "acc" %t4
          func.return()
        }
        "#;
        let mut m = parse_module(text).unwrap();
        for c in [0, 1] {
            let before = interpret(&m, "f", &[c, 7], 1000).unwrap();
            let mut m2 = m.clone();
            dedup_all(&mut m2);
            let after = interpret(&m2, "f", &[c, 7], 1000).unwrap();
            assert_eq!(before.launches, after.launches, "c={c}");
        }
        dedup_all(&mut m);
        // both "base" (from s0, preserved through the if) and "mode" (agreed
        // by both branches) are redundant in s4 — it disappears entirely
        let text2 = print_module(&m);
        assert_eq!(text2.matches("accfg.setup").count(), 3, "{text2}");
    }

    #[test]
    fn does_not_dedup_when_branches_disagree() {
        let text = r#"
        func.func @f(%c: i1, %p: i64, %q: i64) {
          %s0 = accfg.setup "acc" to ("base" = %p) : !accfg.state<"acc">
          %s3 = scf.if %c -> (!accfg.state<"acc">) then {
            %s1 = accfg.setup "acc" from %s0 to ("mode" = %p) : !accfg.state<"acc">
            scf.yield(%s1)
          } else {
            %s2 = accfg.setup "acc" from %s0 to ("mode" = %q) : !accfg.state<"acc">
            scf.yield(%s2)
          }
          %s4 = accfg.setup "acc" from %s3 to ("mode" = %p) : !accfg.state<"acc">
          %t4 = accfg.launch "acc" with %s4 : !accfg.token<"acc">
          accfg.await "acc" %t4
          func.return()
        }
        "#;
        let mut m = parse_module(text).unwrap();
        for c in [0, 1] {
            let before = interpret(&m, "f", &[c, 7, 8], 1000).unwrap();
            let mut m2 = m.clone();
            dedup_all(&mut m2);
            let after = interpret(&m2, "f", &[c, 7, 8], 1000).unwrap();
            assert_eq!(before.launches, after.launches, "c={c}");
        }
        dedup_all(&mut m);
        let text2 = print_module(&m);
        // s4's "mode" write must survive: the else branch wrote %q
        assert_eq!(text2.matches("accfg.setup").count(), 4, "{text2}");
    }

    #[test]
    fn removes_empty_setup_with_input() {
        let text = r#"
        func.func @f(%p: i64) {
          %s1 = accfg.setup "acc" to ("A" = %p) : !accfg.state<"acc">
          %s2 = accfg.setup "acc" from %s1 to () : !accfg.state<"acc">
          %t = accfg.launch "acc" with %s2 : !accfg.token<"acc">
          accfg.await "acc" %t
          func.return()
        }
        "#;
        let mut m = parse_module(text).unwrap();
        assert!(RemoveEmptySetups.run(&mut m).changed());
        verify(&m).unwrap();
        let text2 = print_module(&m);
        assert_eq!(text2.matches("accfg.setup").count(), 1, "{text2}");
    }

    #[test]
    fn merges_setup_chains_without_launches() {
        let text = r#"
        func.func @f(%p: i64, %q: i64) {
          %s1 = accfg.setup "acc" to ("A" = %p) : !accfg.state<"acc">
          %s2 = accfg.setup "acc" from %s1 to ("B" = %q) : !accfg.state<"acc">
          %s3 = accfg.setup "acc" from %s2 to ("A" = %q) : !accfg.state<"acc">
          %t = accfg.launch "acc" with %s3 : !accfg.token<"acc">
          accfg.await "acc" %t
          func.return()
        }
        "#;
        let mut m = parse_module(text).unwrap();
        let before = interpret(&m, "f", &[1, 2], 1000).unwrap();
        assert!(MergeSetups.run(&mut m).changed());
        verify(&m).unwrap();
        let after = interpret(&m, "f", &[1, 2], 1000).unwrap();
        assert_eq!(before.launches, after.launches);
        let text2 = print_module(&m);
        assert_eq!(text2.matches("accfg.setup").count(), 1, "{text2}");
        // later write of "A" won
        assert!(text2.contains("\"A\" = %1"), "{text2}");
    }

    #[test]
    fn does_not_merge_across_launch() {
        let text = r#"
        func.func @f(%p: i64, %q: i64) {
          %s1 = accfg.setup "acc" to ("A" = %p) : !accfg.state<"acc">
          %t1 = accfg.launch "acc" with %s1 : !accfg.token<"acc">
          accfg.await "acc" %t1
          %s2 = accfg.setup "acc" from %s1 to ("A" = %q) : !accfg.state<"acc">
          %t2 = accfg.launch "acc" with %s2 : !accfg.token<"acc">
          accfg.await "acc" %t2
          func.return()
        }
        "#;
        let mut m = parse_module(text).unwrap();
        // s1's state is used by both the launch and s2 -> two uses -> no merge
        assert!(!MergeSetups.run(&mut m).changed());
    }
}
