//! The accfg usage discipline (Section 5.1): "only one state variable may be
//! live at any point in time per accelerator", and tokens are awaited
//! exactly once.
//!
//! This is a lint on top of the structural verifier in `accfg-ir`. Passes in
//! this crate are tested to preserve it.

use crate::dialect;
use accfg_ir::{BlockId, Module, OpId, Opcode, Type, ValueId};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A violation of the accfg discipline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisciplineError {
    /// The op at which the violation was detected.
    pub op: OpId,
    /// Description of the violation.
    pub message: String,
}

impl fmt::Display for DisciplineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "accfg discipline violated at {}: {}",
            self.op, self.message
        )
    }
}

impl Error for DisciplineError {}

/// Checks the accfg discipline over the whole module:
///
/// - a state value is only used while it is the *newest* state of its
///   accelerator in its block (uses may precede, never follow, the
///   definition of a younger state);
/// - every launch token is awaited exactly once.
///
/// # Errors
///
/// Returns the first violation found.
pub fn verify_discipline(m: &Module) -> Result<(), DisciplineError> {
    for &func in m.funcs() {
        for op in m.walk_collect(func) {
            if m.op(op).opcode == Opcode::AccfgLaunch {
                let token = m.op(op).results[0];
                let awaits: Vec<_> = m
                    .uses_of(token)
                    .into_iter()
                    .filter(|u| m.op(u.op).opcode == Opcode::AccfgAwait)
                    .collect();
                if awaits.len() != 1 {
                    return Err(DisciplineError {
                        op,
                        message: format!(
                            "launch token must be awaited exactly once, found {} awaits",
                            awaits.len()
                        ),
                    });
                }
            }
        }
        let body = m.body_block(func, 0);
        check_block(m, body)?;
    }
    Ok(())
}

fn check_block(m: &Module, block: BlockId) -> Result<(), DisciplineError> {
    // newest state value defined in this block, per accelerator
    let mut newest: HashMap<String, ValueId> = HashMap::new();
    for &arg in &m.block(block).args {
        if let Type::State(accel) = m.value_type(arg) {
            newest.insert(accel.clone(), arg);
        }
    }
    for op in m.block_ops(block) {
        // a state operand must be the newest known state of its accelerator
        for &operand in &m.op(op).operands {
            if let Type::State(accel) = m.value_type(operand) {
                if let Some(&n) = newest.get(accel) {
                    if n != operand {
                        return Err(DisciplineError {
                            op,
                            message: format!(
                                "uses stale state {operand} of accelerator \"{accel}\" \
                                 (newest is {n})"
                            ),
                        });
                    }
                }
            }
        }
        for &result in &m.op(op).results {
            if let Type::State(accel) = m.value_type(result) {
                newest.insert(accel.clone(), result);
            }
        }
        for ri in 0..m.op(op).regions.len() {
            let region = m.op(op).regions[ri];
            for b in m.region(region).blocks.clone() {
                check_block(m, b)?;
            }
        }
    }
    Ok(())
}

/// Counts configuration field writes statically reachable in one pass over
/// the IR (each setup's field count, loops counted once). A cheap progress
/// metric used by tests and benches: deduplication must never increase it.
pub fn static_setup_field_count(m: &Module) -> usize {
    m.walk_module()
        .into_iter()
        .filter(|&o| m.op(o).opcode == Opcode::AccfgSetup)
        .map(|o| dialect::setup_fields(m, o).len())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use accfg_ir::{FuncBuilder, Module};

    #[test]
    fn well_formed_program_passes() {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let x = b.const_index(1);
        let s1 = b.setup("acc", &[("a", x)]);
        let t1 = b.launch("acc", s1);
        b.await_token("acc", t1);
        let s2 = b.setup_from("acc", s1, &[("b", x)]);
        let t2 = b.launch("acc", s2);
        b.await_token("acc", t2);
        b.ret(vec![]);
        verify_discipline(&m).unwrap();
    }

    #[test]
    fn stale_state_use_detected() {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let x = b.const_index(1);
        let s1 = b.setup("acc", &[("a", x)]);
        let _s2 = b.setup_from("acc", s1, &[("b", x)]);
        // launching s1 after s2 was defined: stale
        let t = b.launch("acc", s1);
        b.await_token("acc", t);
        b.ret(vec![]);
        let e = verify_discipline(&m).unwrap_err();
        assert!(e.message.contains("stale state"), "{e}");
    }

    #[test]
    fn unawaited_token_detected() {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let x = b.const_index(1);
        let s1 = b.setup("acc", &[("a", x)]);
        b.launch("acc", s1); // never awaited
        b.ret(vec![]);
        let e = verify_discipline(&m).unwrap_err();
        assert!(e.message.contains("awaited exactly once"), "{e}");
    }

    #[test]
    fn different_accelerators_are_independent() {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let x = b.const_index(1);
        let s1 = b.setup("north", &[("a", x)]);
        let s2 = b.setup("south", &[("a", x)]);
        let t1 = b.launch("north", s1); // south's newer state is irrelevant
        b.await_token("north", t1);
        let t2 = b.launch("south", s2);
        b.await_token("south", t2);
        b.ret(vec![]);
        verify_discipline(&m).unwrap();
    }

    #[test]
    fn static_field_count_sums_setups() {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let x = b.const_index(1);
        let s = b.setup("acc", &[("a", x), ("b", x)]);
        let _s2 = b.setup_from("acc", s, &[("c", x)]);
        b.ret(vec![]);
        assert_eq!(static_setup_field_count(&m), 3);
    }
}
