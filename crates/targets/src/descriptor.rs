//! Accelerator descriptors: the target-specific facts the lowering needs.
//!
//! A descriptor lists the accelerator's configuration fields (name, bit
//! width, configuration register — the shape of the paper's Table 1), its
//! configuration style (CSR writes vs. RoCC command pairs), and the
//! simulator parameters of the platform. Adding a new accelerator
//! ("Your Acc" in Figure 8) means writing one descriptor — the whole accfg
//! pipeline is reused unchanged; see the `custom_accelerator` example.

use accfg_sim::{regmap, AccelParams, ContentionParams, DvfsParams, HostModel, TimingModel};

/// How configuration reaches the accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigStyle {
    /// One CSR/MMIO write per field (OpenGeMM-style), with an explicit
    /// launch register and polled status.
    Csr,
    /// RoCC custom instructions carrying a pair of configuration registers
    /// each (Gemmini-style); the instruction with `launch_funct` implicitly
    /// launches ("launch-semantic" configuration, Section 2.4).
    RoccPairs {
        /// The funct whose command carries launch semantics.
        launch_funct: u8,
    },
}

/// One configuration field, as in Table 1 of the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldSpec {
    /// Field name used in `accfg.setup` ops.
    pub name: String,
    /// Architectural width in bits (for Table 1 and byte accounting).
    pub bits: u32,
    /// The simulator configuration register this field maps to.
    pub reg: u16,
    /// Human-readable meaning (Table 1's middle column).
    pub meaning: String,
}

/// Everything the lowering and benches need to know about one target.
///
/// Equality is structural over every field; the serving runtime relies on
/// it to enforce that a descriptor *name* uniquely identifies one
/// platform variant within a pool.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorDescriptor {
    /// The accelerator name, matching `accfg` ops' accelerator strings.
    pub name: String,
    /// Simulator-side accelerator parameters.
    pub accel: AccelParams,
    /// Host CPU cost model for this platform.
    pub host: HostModel,
    /// Configuration style.
    pub style: ConfigStyle,
    /// Field table.
    pub fields: Vec<FieldSpec>,
    /// The platform's timing model: shared memory-bandwidth contention and
    /// DVFS frequency states. Identity (both disabled) by default — the
    /// base simulator's write-linear timing; enable the platform's
    /// reference values with
    /// [`AcceleratorDescriptor::with_reference_timing`]. Timing is
    /// *provisioning*, not interface: it never affects
    /// [plan compatibility](AcceleratorDescriptor::plan_compatible).
    pub timing: TimingModel,
}

impl AcceleratorDescriptor {
    /// The Gemmini-like platform descriptor (Sections 2.4 and 6.1):
    /// Rocket-like RV64 host at ~3 CPI, 16×16 systolic array, sequential
    /// RoCC configuration with a launch-semantic final command.
    pub fn gemmini() -> Self {
        let f = |name: &str, bits: u32, reg: u16, meaning: &str| FieldSpec {
            name: name.into(),
            bits,
            reg,
            meaning: meaning.into(),
        };
        Self {
            name: "gemmini".into(),
            accel: AccelParams::gemmini_like(),
            host: HostModel::rocket_like(),
            style: ConfigStyle::RoccPairs { launch_funct: 13 },
            fields: vec![
                f(
                    "A",
                    64,
                    regmap::A_ADDR,
                    "Address in main memory of matrix A",
                ),
                f(
                    "B",
                    64,
                    regmap::B_ADDR,
                    "Address in main memory of matrix B",
                ),
                f(
                    "C",
                    64,
                    regmap::C_ADDR,
                    "Address in main memory of matrix C",
                ),
                f(
                    "D",
                    64,
                    regmap::D_ADDR,
                    "Address in main memory of matrix D",
                ),
                f("I", 16, regmap::M, "Rows of the output tile"),
                f("J", 16, regmap::N, "Columns of the output tile"),
                f("K", 16, regmap::K, "Reduction depth of the tile"),
                f("stride_A", 64, regmap::STRIDE_A, "Row stride to access A"),
                f("stride_B", 64, regmap::STRIDE_B, "Row stride to access B"),
                f("stride_C", 64, regmap::STRIDE_C, "Row stride to access C"),
                f("stride_D", 64, regmap::STRIDE_D, "Row stride to access D"),
                f(
                    "flags",
                    8,
                    regmap::FLAGS,
                    "act / A_transpose / B_transpose bits",
                ),
                // the gemmini.h software layer also computes and writes all
                // of these per invocation — the "parameter calculation" cost
                // behind the effective configuration bandwidth of §4.4
                f(
                    "spad_A",
                    32,
                    regmap::SPAD_A,
                    "Scratchpad-local address of A",
                ),
                f(
                    "spad_B",
                    32,
                    regmap::SPAD_B,
                    "Scratchpad-local address of B",
                ),
                f(
                    "spad_C",
                    32,
                    regmap::SPAD_C,
                    "Accumulator-bank address of C",
                ),
                f(
                    "spad_D",
                    32,
                    regmap::SPAD_D,
                    "Scratchpad-local address of D",
                ),
                f(
                    "loop_sizes",
                    48,
                    regmap::LOOP_SIZES,
                    "Packed I|J<<16|K<<32 bounds",
                ),
                f(
                    "loop_pads",
                    48,
                    regmap::LOOP_PADS,
                    "Packed pad_I|pad_J<<16|pad_K<<32",
                ),
                f(
                    "config_ex",
                    64,
                    regmap::CONFIG_EX,
                    "Execute-pipeline config word",
                ),
                f(
                    "config_ld_A",
                    64,
                    regmap::CONFIG_LD_A,
                    "Load-mover config for A",
                ),
                f(
                    "config_ld_B",
                    64,
                    regmap::CONFIG_LD_B,
                    "Load-mover config for B",
                ),
                f(
                    "config_ld_D",
                    64,
                    regmap::CONFIG_LD_D,
                    "Load-mover config for D",
                ),
                f(
                    "config_st",
                    64,
                    regmap::CONFIG_ST,
                    "Store-mover config for C",
                ),
                f("mvin_scale", 32, regmap::MVIN_SCALE, "Input scale factor"),
            ],
            timing: TimingModel::identity(),
        }
    }

    /// The OpenGeMM-like platform descriptor (Section 6.2): tiny in-order
    /// RV32 host, 8×8×8 GeMM core, concurrent CSR configuration.
    pub fn opengemm() -> Self {
        let f = |name: &str, bits: u32, reg: u16, meaning: &str| FieldSpec {
            name: name.into(),
            bits,
            reg,
            meaning: meaning.into(),
        };
        Self {
            name: "opengemm".into(),
            accel: AccelParams::opengemm_like(),
            host: HostModel::snitch_like(),
            style: ConfigStyle::Csr,
            fields: vec![
                f("A", 32, regmap::A_ADDR, "Base pointer of matrix A"),
                f("B", 32, regmap::B_ADDR, "Base pointer of matrix B"),
                f("C", 32, regmap::C_ADDR, "Base pointer of matrix C"),
                f("D", 32, regmap::D_ADDR, "Base pointer of bias matrix D"),
                f("M", 32, regmap::M, "Output rows of the tile"),
                f("N", 32, regmap::N, "Output columns of the tile"),
                f("K", 32, regmap::K, "Reduction depth of the tile"),
                f("stride_A", 32, regmap::STRIDE_A, "Row stride of A in bytes"),
                f("stride_B", 32, regmap::STRIDE_B, "Row stride of B in bytes"),
                f("stride_C", 32, regmap::STRIDE_C, "Row stride of C in bytes"),
                f("stride_D", 32, regmap::STRIDE_D, "Row stride of D in bytes"),
                f(
                    "flags",
                    8,
                    regmap::FLAGS,
                    "Activation and transpose switches",
                ),
                // the SNAX data streamers feeding the GeMM core have their
                // own per-operand CSRs (temporal loop bound + spatial
                // stride); the host must program all of them per launch
                f(
                    "streamer_A_bound",
                    32,
                    regmap::SPAD_A,
                    "Streamer A temporal bound",
                ),
                f(
                    "streamer_A_stride",
                    32,
                    regmap::SPAD_B,
                    "Streamer A spatial stride",
                ),
                f(
                    "streamer_B_bound",
                    32,
                    regmap::SPAD_C,
                    "Streamer B temporal bound",
                ),
                f(
                    "streamer_B_stride",
                    32,
                    regmap::SPAD_D,
                    "Streamer B spatial stride",
                ),
                f(
                    "streamer_C_bound",
                    32,
                    regmap::LOOP_SIZES,
                    "Streamer C temporal bound",
                ),
                f(
                    "streamer_C_stride",
                    32,
                    regmap::LOOP_PADS,
                    "Streamer C spatial stride",
                ),
                f(
                    "streamer_A_bound2",
                    32,
                    regmap::CONFIG_EX,
                    "Streamer A inner bound",
                ),
                f(
                    "streamer_A_stride2",
                    32,
                    regmap::CONFIG_LD_A,
                    "Streamer A inner stride",
                ),
                f(
                    "streamer_B_bound2",
                    32,
                    regmap::CONFIG_LD_B,
                    "Streamer B inner bound",
                ),
                f(
                    "streamer_B_stride2",
                    32,
                    regmap::CONFIG_LD_D,
                    "Streamer B inner stride",
                ),
                f(
                    "streamer_C_bound2",
                    32,
                    regmap::CONFIG_ST,
                    "Streamer C inner bound",
                ),
                f(
                    "streamer_C_stride2",
                    32,
                    regmap::MVIN_SCALE,
                    "Streamer C inner stride",
                ),
            ],
            timing: TimingModel::identity(),
        }
    }

    /// A turbo-provisioned Gemmini variant: the same RoCC configuration
    /// interface and field table as [`AcceleratorDescriptor::gemmini`]
    /// (so the two are [plan-compatible] and can share one worker group
    /// in a heterogeneous pool) over a 32×32 systolic array — 4× the
    /// compute rate, with the deeper fill/drain overhead a larger array
    /// pays. Configuration writes cost exactly what they cost on the base
    /// platform, which is what makes the variant invisible to raw
    /// write-count scoring and visible to cycle-cost scoring.
    ///
    /// [plan-compatible]: AcceleratorDescriptor::plan_compatible
    pub fn gemmini_turbo() -> Self {
        let mut d = Self::gemmini();
        d.name = "gemmini-turbo".into();
        d.accel.name = "gemmini-turbo".into();
        d.accel.macs_per_cycle = 1024;
        d.accel.launch_overhead = 28;
        d
    }

    /// A lightly-provisioned OpenGeMM variant: the same CSR configuration
    /// interface and field table as [`AcceleratorDescriptor::opengemm`]
    /// over a 4×4×8 GeMM core — an eighth of the compute rate with a
    /// shallower output pipeline. The under-provisioned end of a
    /// heterogeneous pool: write counts still tie with the base platform,
    /// but heavyweight dispatches take far longer here.
    pub fn opengemm_lite() -> Self {
        let mut d = Self::opengemm();
        d.name = "opengemm-lite".into();
        d.accel.name = "opengemm-lite".into();
        d.accel.macs_per_cycle = 64;
        d.accel.launch_overhead = 6;
        d
    }

    /// Installs the platform's *reference* timing model: the
    /// shared-bandwidth contention budget and DVFS table this target's
    /// hardware would plausibly carry, instantiated differently per
    /// platform (and per provisioning variant — the turbo array moves
    /// more tile bytes and ramps faster; the lite core has a narrower
    /// memory system and a shallower boost).
    ///
    /// Descriptors default to the identity model, so enabling rich timing
    /// is always explicit. The analytic cost anchors consume the same
    /// parameters (at the isolated from-cold operating point), which
    /// keeps them honest while load-dependent contention and frequency
    /// history open a real gap for the online refiner to close.
    #[must_use]
    pub fn with_reference_timing(mut self) -> Self {
        let a = &self.accel;
        self.timing = match self.name.as_str() {
            // wide DDR-class memory system shared with a DMA-heavy
            // systolic array; a big array heats slowly but boosts high
            "gemmini" => TimingModel {
                contention: Some(ContentionParams {
                    budget_bytes_per_cycle: 16,
                    accel_bytes_per_cycle: 12,
                }),
                dvfs: Some(DvfsParams {
                    warm_busy_cycles: 2_048,
                    boost_busy_cycles: 8_192,
                    cooldown_idle_cycles: 16_384,
                    speed_pct: [40, 100, 160],
                }),
            },
            // 4× the tile traffic on the same interface; ramps in half
            // the busy cycles and boosts higher
            "gemmini-turbo" => TimingModel {
                contention: Some(ContentionParams {
                    budget_bytes_per_cycle: 32,
                    accel_bytes_per_cycle: 26,
                }),
                dvfs: Some(DvfsParams {
                    warm_busy_cycles: 1_024,
                    boost_busy_cycles: 4_096,
                    cooldown_idle_cycles: 16_384,
                    speed_pct: [40, 100, 200],
                }),
            },
            // tightly-coupled SRAM streamers: a narrow budget the GeMM
            // core keeps mostly occupied, so concurrent configuration
            // really pays for its overlap under load
            "opengemm" => TimingModel {
                contention: Some(ContentionParams {
                    budget_bytes_per_cycle: 8,
                    accel_bytes_per_cycle: 6,
                }),
                dvfs: Some(DvfsParams {
                    warm_busy_cycles: 1_024,
                    boost_busy_cycles: 4_096,
                    cooldown_idle_cycles: 8_192,
                    speed_pct: [40, 100, 160],
                }),
            },
            // the under-provisioned variant: half the bandwidth, a slow
            // ramp, and barely any boost headroom
            "opengemm-lite" => TimingModel {
                contention: Some(ContentionParams {
                    budget_bytes_per_cycle: 4,
                    accel_bytes_per_cycle: 3,
                }),
                dvfs: Some(DvfsParams {
                    warm_busy_cycles: 2_048,
                    boost_busy_cycles: 8_192,
                    cooldown_idle_cycles: 8_192,
                    speed_pct: [50, 100, 125],
                }),
            },
            // custom descriptors ("Your Acc"): derive a generic model
            // from the platform parameters so the pipeline stays
            // one-descriptor-per-accelerator
            _ => TimingModel {
                contention: Some(ContentionParams {
                    budget_bytes_per_cycle: (2 * a.csr_payload_bytes).max(2),
                    accel_bytes_per_cycle: (3 * a.csr_payload_bytes / 2).max(1),
                }),
                dvfs: Some(DvfsParams {
                    warm_busy_cycles: 64 * a.launch_overhead.max(1),
                    boost_busy_cycles: 256 * a.launch_overhead.max(1),
                    cooldown_idle_cycles: 1_024 * a.launch_overhead.max(1),
                    speed_pct: [50, 100, 150],
                }),
            },
        };
        self
    }

    /// `true` if a dispatch plan compiled for `self` can be replayed on a
    /// worker running `other`: identical configuration style (write
    /// granularity and launch mechanism, including the RoCC launch funct)
    /// and an identical field table (every `accfg` field maps to the same
    /// hardware register). Platform variants that differ only in
    /// provisioning — array geometry, compute rate, pipeline overheads,
    /// host speed — are compatible; platforms with different
    /// configuration interfaces are not, and a heterogeneous pool must
    /// never group them.
    pub fn plan_compatible(&self, other: &AcceleratorDescriptor) -> bool {
        self.style == other.style && self.fields == other.fields
    }

    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&FieldSpec> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Looks up the field mapped to a given configuration register — how
    /// target-agnostic code (e.g. the workload generators) finds each
    /// target's name for a canonical role like [`regmap::M`].
    pub fn field_by_reg(&self, reg: u16) -> Option<&FieldSpec> {
        self.fields.iter().find(|f| f.reg == reg)
    }

    /// Total architectural configuration state in bits.
    pub fn total_config_bits(&self) -> u32 {
        self.fields.iter().map(|f| f.bits).sum()
    }

    /// Renders the field table in the layout of the paper's Table 1.
    pub fn field_table_markdown(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        writeln!(out, "| Field | Meaning | Bits |").unwrap();
        writeln!(out, "|---|---|---|").unwrap();
        for f in &self.fields {
            writeln!(out, "| {} | {} | {} |", f.name, f.meaning, f.bits).unwrap();
        }
        out
    }

    /// `true` if this platform supports concurrent configuration, i.e. the
    /// overlap optimization applies (Section 2.2).
    pub fn supports_overlap(&self) -> bool {
        self.accel.scheme == accfg_sim::ConfigScheme::Concurrent
    }

    /// The overlap-pass filter for this target: everything on concurrent
    /// hardware, nothing on sequential hardware. Pass this to
    /// [`accfg::pipeline::pipeline`] when compiling for one descriptor.
    pub fn overlap_filter(&self) -> accfg::AccelFilter {
        if self.supports_overlap() {
            accfg::AccelFilter::All
        } else {
            accfg::AccelFilter::Only(vec![])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemmini_matches_paper_platform() {
        let d = AcceleratorDescriptor::gemmini();
        assert_eq!(d.accel.peak_ops_per_cycle(), 512);
        assert!(!d.supports_overlap());
        assert!(matches!(
            d.style,
            ConfigStyle::RoccPairs { launch_funct: 13 }
        ));
        assert_eq!(d.host.alu, 3); // the paper's 3 cycles/instruction
    }

    #[test]
    fn opengemm_matches_paper_platform() {
        let d = AcceleratorDescriptor::opengemm();
        assert_eq!(d.accel.peak_ops_per_cycle(), 1024);
        assert!(d.supports_overlap());
        assert_eq!(d.style, ConfigStyle::Csr);
    }

    #[test]
    fn variants_are_plan_compatible_with_their_base() {
        let gemmini = AcceleratorDescriptor::gemmini();
        let turbo = AcceleratorDescriptor::gemmini_turbo();
        assert!(gemmini.plan_compatible(&turbo));
        assert!(turbo.plan_compatible(&gemmini));
        assert_eq!(turbo.accel.macs_per_cycle, 4 * gemmini.accel.macs_per_cycle);
        let opengemm = AcceleratorDescriptor::opengemm();
        let lite = AcceleratorDescriptor::opengemm_lite();
        assert!(opengemm.plan_compatible(&lite));
        assert!(lite.accel.macs_per_cycle < opengemm.accel.macs_per_cycle);
        // different configuration interfaces are never compatible
        assert!(!gemmini.plan_compatible(&opengemm));
        assert!(!lite.plan_compatible(&turbo));
    }

    #[test]
    fn descriptors_default_to_identity_timing() {
        for d in [
            AcceleratorDescriptor::gemmini(),
            AcceleratorDescriptor::opengemm(),
            AcceleratorDescriptor::gemmini_turbo(),
            AcceleratorDescriptor::opengemm_lite(),
        ] {
            assert!(d.timing.is_identity(), "{}", d.name);
        }
    }

    #[test]
    fn reference_timing_differs_per_platform() {
        let platforms = [
            AcceleratorDescriptor::gemmini().with_reference_timing(),
            AcceleratorDescriptor::gemmini_turbo().with_reference_timing(),
            AcceleratorDescriptor::opengemm().with_reference_timing(),
            AcceleratorDescriptor::opengemm_lite().with_reference_timing(),
        ];
        for d in &platforms {
            assert!(!d.timing.is_identity(), "{}", d.name);
            let c = d.timing.contention.unwrap();
            // tile traffic never saturates the whole budget
            assert!(
                c.accel_bytes_per_cycle < c.budget_bytes_per_cycle,
                "{}",
                d.name
            );
            let v = d.timing.dvfs.unwrap();
            assert!(v.warm_busy_cycles < v.boost_busy_cycles, "{}", d.name);
            // cold is slower than nominal, boost faster
            assert!(v.speed_pct[0] < 100 && v.speed_pct[2] > 100, "{}", d.name);
        }
        // each platform instantiates its own parameters
        for (i, a) in platforms.iter().enumerate() {
            for b in &platforms[i + 1..] {
                assert_ne!(a.timing, b.timing, "{} vs {}", a.name, b.name);
            }
        }
        // a custom descriptor gets the derived generic model
        let mut custom = AcceleratorDescriptor::opengemm();
        custom.name = "your-acc".into();
        assert!(!custom.with_reference_timing().timing.is_identity());
    }

    #[test]
    fn timing_is_provisioning_not_interface() {
        // enabling rich timing never breaks plan compatibility: the
        // configuration interface and field table are unchanged
        let base = AcceleratorDescriptor::gemmini();
        let timed = AcceleratorDescriptor::gemmini().with_reference_timing();
        assert!(base.plan_compatible(&timed));
        assert!(timed.plan_compatible(&base));
        // but a timed descriptor is a different *provisioning*: structural
        // equality (what AmbiguousVariantName guards) distinguishes them
        assert_ne!(base, timed);
    }

    #[test]
    fn field_lookup_and_bits() {
        let d = AcceleratorDescriptor::gemmini();
        assert_eq!(d.field("A").unwrap().bits, 64);
        assert_eq!(d.field("I").unwrap().reg, regmap::M);
        assert!(d.field("nope").is_none());
        // Table 1 magnitude: hundreds of bits of configuration state
        assert!(d.total_config_bits() > 400, "{}", d.total_config_bits());
    }

    #[test]
    fn table_markdown_renders_all_fields() {
        let d = AcceleratorDescriptor::gemmini();
        let t = d.field_table_markdown();
        for f in &d.fields {
            assert!(t.contains(&f.name));
        }
        assert!(t.contains("| Field | Meaning | Bits |"));
    }
}
