//! # accfg-targets: accelerator descriptors and target lowering
//!
//! Step 5 of the paper's compilation flow (Figure 8): converting optimized
//! `accfg` IR into the actual per-target configuration instruction
//! sequences, plus the descriptors that encapsulate everything
//! target-specific (Table 1-style field tables, configuration style,
//! platform cost models).
//!
//! Two descriptors ship with the crate — [`AcceleratorDescriptor::gemmini`]
//! (sequential, RoCC, launch-semantic) and
//! [`AcceleratorDescriptor::opengemm`] (concurrent, CSR, explicit launch) —
//! and new targets are plain data; see the `custom_accelerator` example at
//! the workspace root.

#![warn(missing_docs)]

pub mod descriptor;
pub mod lower;

pub use descriptor::{AcceleratorDescriptor, ConfigStyle, FieldSpec};
pub use lower::{compile, LowerError};
