//! Lowering accfg-level IR to target instruction streams (step 5 of
//! Figure 8).
//!
//! The only target-specific knowledge lives in the
//! [`AcceleratorDescriptor`]: field-name → configuration-register mapping
//! and the configuration style. CSR targets get one `csrw` per field; RoCC
//! targets get one 16-byte custom command per *register pair*, with the
//! launch-semantic pair deferred to `accfg.launch` (Gemmini has no
//! dedicated launch instruction — the last command of the sequence
//! launches, Section 2.4).
//!
//! For RoCC pair commands that only have one freshly-written half, the
//! lowering reuses the host register that last supplied the other half
//! (hardware cannot write half a pair) — this is exactly why deduplication
//! saves fewer bytes on pair-granular interfaces, an effect the evaluation
//! reproduces.

use crate::descriptor::{AcceleratorDescriptor, ConfigStyle};
use accfg::{accelerator as accfg_accel, setup_fields};
use accfg_ir::{BlockId, CmpPredicate, Module, OpId, Opcode, ValueId};
use accfg_sim::{AluOp, BranchCond, Program, ProgramBuilder, Reg};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Why lowering failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    /// The op has no lowering (opaque/foreign ops must be gone by now).
    UnsupportedOp {
        /// The op's dotted name.
        op: String,
    },
    /// A setup references a field the descriptor does not declare.
    UnknownField {
        /// The accelerator named by the setup.
        accelerator: String,
        /// The missing field.
        field: String,
    },
    /// The program drives an accelerator other than the target's.
    WrongAccelerator {
        /// What the descriptor lowers for.
        expected: String,
        /// What the program used.
        found: String,
    },
    /// No function with the requested name.
    NoSuchFunc(String),
    /// Wrong number of argument values for the function.
    ArgCount {
        /// Parameters declared.
        expected: usize,
        /// Values provided.
        provided: usize,
    },
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::UnsupportedOp { op } => write!(f, "cannot lower op `{op}`"),
            LowerError::UnknownField { accelerator, field } => {
                write!(f, "accelerator `{accelerator}` has no field `{field}`")
            }
            LowerError::WrongAccelerator { expected, found } => {
                write!(
                    f,
                    "program targets `{found}` but descriptor is for `{expected}`"
                )
            }
            LowerError::NoSuchFunc(name) => write!(f, "no function named `{name}`"),
            LowerError::ArgCount { expected, provided } => {
                write!(f, "function expects {expected} arguments, got {provided}")
            }
        }
    }
}

impl Error for LowerError {}

/// Compiles `func_name` of `m` to a target program, binding the function's
/// arguments to the concrete values `args` (the runtime pointers/sizes the
/// kernel is linked against).
///
/// # Errors
///
/// See [`LowerError`].
pub fn compile(
    m: &Module,
    func_name: &str,
    desc: &AcceleratorDescriptor,
    args: &[i64],
) -> Result<Program, LowerError> {
    let func = m
        .func_by_name(func_name)
        .ok_or_else(|| LowerError::NoSuchFunc(func_name.to_string()))?;
    let body = m.body_block(func, 0);
    let params = m.block(body).args.clone();
    if params.len() != args.len() {
        return Err(LowerError::ArgCount {
            expected: params.len(),
            provided: args.len(),
        });
    }
    let mut l = Lowerer {
        m,
        desc,
        pb: ProgramBuilder::new(),
        vals: HashMap::new(),
        shadow: HashMap::new(),
        zero: None,
    };
    for (&p, &a) in params.iter().zip(args.iter()) {
        let r = l.reg_for(p);
        l.pb.li(r, a);
    }
    l.lower_block(body)?;
    l.pb.halt();
    Ok(l.pb.finish())
}

struct Lowerer<'a> {
    m: &'a Module,
    desc: &'a AcceleratorDescriptor,
    pb: ProgramBuilder,
    vals: HashMap<ValueId, Reg>,
    /// configuration register index → host register that last supplied it
    shadow: HashMap<u16, Reg>,
    zero: Option<Reg>,
}

impl<'a> Lowerer<'a> {
    fn reg_for(&mut self, v: ValueId) -> Reg {
        if let Some(&r) = self.vals.get(&v) {
            return r;
        }
        let r = self.pb.reg();
        self.vals.insert(v, r);
        r
    }

    fn zero_reg(&mut self) -> Reg {
        match self.zero {
            Some(r) => r,
            None => {
                let r = self.pb.reg();
                self.pb.li(r, 0);
                self.zero = Some(r);
                r
            }
        }
    }

    /// `rd = rs` via `addi rd, rs, 0`.
    fn mov(&mut self, rd: Reg, rs: Reg) {
        self.pb.alui(AluOp::Add, rd, rs, 0);
    }

    fn lower_block(&mut self, block: BlockId) -> Result<(), LowerError> {
        for op in self.m.block_ops(block) {
            self.lower_op(op)?;
        }
        Ok(())
    }

    fn lower_op(&mut self, op: OpId) -> Result<(), LowerError> {
        let m = self.m;
        let data = m.op(op);
        let opcode = data.opcode;
        match opcode {
            Opcode::Constant => {
                let v = m.int_attr(op, "value").expect("verified constant");
                let rd = self.reg_for(data.results[0]);
                self.pb.li(rd, v);
            }
            o if o.is_binary_arith() => {
                let rs1 = self.reg_for(data.operands[0]);
                let rs2 = self.reg_for(data.operands[1]);
                let rd = self.reg_for(data.results[0]);
                let alu = match o {
                    Opcode::AddI => AluOp::Add,
                    Opcode::SubI => AluOp::Sub,
                    Opcode::MulI => AluOp::Mul,
                    Opcode::DivUI => AluOp::Divu,
                    Opcode::RemUI => AluOp::Remu,
                    Opcode::AndI => AluOp::And,
                    Opcode::OrI => AluOp::Or,
                    Opcode::XOrI => AluOp::Xor,
                    Opcode::ShLI => AluOp::Sll,
                    Opcode::ShRUI => AluOp::Srl,
                    _ => unreachable!("binary arith"),
                };
                self.pb.alu(alu, rd, rs1, rs2);
            }
            Opcode::CmpI => self.lower_cmp(op),
            Opcode::Select => {
                let cond = self.reg_for(data.operands[0]);
                let t = self.reg_for(data.operands[1]);
                let f = self.reg_for(data.operands[2]);
                let rd = self.reg_for(data.results[0]);
                let zero = self.zero_reg();
                let skip = self.pb.new_label();
                self.mov(rd, f);
                self.pb.branch(BranchCond::Eq, cond, zero, skip);
                self.mov(rd, t);
                self.pb.bind(skip);
            }
            Opcode::For => self.lower_for(op)?,
            Opcode::If => self.lower_if(op)?,
            Opcode::Yield | Opcode::Return => {} // handled by parents / epilogue
            Opcode::AccfgSetup => self.lower_setup(op)?,
            Opcode::AccfgLaunch => self.lower_launch(op)?,
            Opcode::AccfgAwait => self.pb.await_idle(),
            _ => {
                return Err(LowerError::UnsupportedOp {
                    op: opcode.name().to_string(),
                })
            }
        }
        Ok(())
    }

    fn lower_cmp(&mut self, op: OpId) {
        let data = self.m.op(op);
        let a = self.reg_for(data.operands[0]);
        let b = self.reg_for(data.operands[1]);
        let rd = self.reg_for(data.results[0]);
        let pred = self
            .m
            .str_attr(op, "predicate")
            .and_then(CmpPredicate::from_name)
            .expect("verified predicate");
        match pred {
            CmpPredicate::Eq => {
                let t = self.pb.reg();
                self.pb.alu(AluOp::Xor, t, a, b);
                self.pb.alui(AluOp::Sltu, rd, t, 1);
            }
            CmpPredicate::Ne => {
                let t = self.pb.reg();
                let zero = self.zero_reg();
                self.pb.alu(AluOp::Xor, t, a, b);
                self.pb.alu(AluOp::Sltu, rd, zero, t);
            }
            CmpPredicate::Slt => self.pb.alu(AluOp::Slt, rd, a, b),
            CmpPredicate::Sgt => self.pb.alu(AluOp::Slt, rd, b, a),
            CmpPredicate::Sge => {
                self.pb.alu(AluOp::Slt, rd, a, b);
                self.pb.alui(AluOp::Xor, rd, rd, 1);
            }
            CmpPredicate::Sle => {
                self.pb.alu(AluOp::Slt, rd, b, a);
                self.pb.alui(AluOp::Xor, rd, rd, 1);
            }
            CmpPredicate::Ult => self.pb.alu(AluOp::Sltu, rd, a, b),
            CmpPredicate::Ule => {
                self.pb.alu(AluOp::Sltu, rd, b, a);
                self.pb.alui(AluOp::Xor, rd, rd, 1);
            }
        }
    }

    fn lower_for(&mut self, op: OpId) -> Result<(), LowerError> {
        let m = self.m;
        let data = m.op(op).clone();
        let lb = self.reg_for(data.operands[0]);
        let ub = self.reg_for(data.operands[1]);
        let step = self.reg_for(data.operands[2]);
        let body = m.body_block(op, 0);
        let args = m.block(body).args.clone();
        let iv = self.reg_for(args[0]);
        self.mov(iv, lb);
        // integer iter args get registers initialized from inits;
        // state/token iter args are compile-time bookkeeping only
        let mut int_args = Vec::new();
        for (&arg, &init) in args[1..].iter().zip(data.operands[3..].iter()) {
            if m.value_type(arg).is_integer_like() {
                let ar = self.reg_for(arg);
                let ir = self.reg_for(init);
                self.mov(ar, ir);
                int_args.push(ar);
            }
        }
        let head = self.pb.new_label();
        let end = self.pb.new_label();
        self.pb.bind(head);
        self.pb.branch(BranchCond::Ge, iv, ub, end);
        self.lower_block(body)?;
        // yield: two-phase move into the iteration registers
        let yield_op = m.terminator(body);
        let mut temps = Vec::new();
        let yield_operands = m.op(yield_op).operands.clone();
        for (&y, &arg) in yield_operands.iter().zip(args[1..].iter()) {
            if m.value_type(arg).is_integer_like() {
                let yr = self.reg_for(y);
                let t = self.pb.reg();
                self.mov(t, yr);
                temps.push(t);
            }
        }
        for (&ar, &t) in int_args.iter().zip(temps.iter()) {
            self.mov(ar, t);
        }
        self.pb.alu(AluOp::Add, iv, iv, step);
        self.pb.jump(head);
        self.pb.bind(end);
        // integer results are the final iteration-register values
        let mut int_idx = 0;
        for (&arg, &res) in args[1..].iter().zip(data.results.iter()) {
            if m.value_type(arg).is_integer_like() {
                let r = int_args[int_idx];
                self.vals.insert(res, r);
                int_idx += 1;
            }
        }
        Ok(())
    }

    fn lower_if(&mut self, op: OpId) -> Result<(), LowerError> {
        let m = self.m;
        let data = m.op(op).clone();
        let cond = self.reg_for(data.operands[0]);
        let zero = self.zero_reg();
        // integer results get registers written by both branches
        let result_regs: Vec<Option<Reg>> = data
            .results
            .iter()
            .map(|&r| m.value_type(r).is_integer_like().then(|| self.reg_for(r)))
            .collect();
        let else_l = self.pb.new_label();
        let end_l = self.pb.new_label();
        self.pb.branch(BranchCond::Eq, cond, zero, else_l);
        for region in 0..2 {
            let block = m.body_block(op, region);
            self.lower_block(block)?;
            let yield_op = m.terminator(block);
            let yields = m.op(yield_op).operands.clone();
            for (&y, rr) in yields.iter().zip(result_regs.iter()) {
                if let Some(rd) = rr {
                    let yr = self.reg_for(y);
                    self.mov(*rd, yr);
                }
            }
            if region == 0 {
                self.pb.jump(end_l);
                self.pb.bind(else_l);
            }
        }
        self.pb.bind(end_l);
        Ok(())
    }

    fn check_accel(&self, op: OpId) -> Result<(), LowerError> {
        let found = accfg_accel(self.m, op);
        if found != self.desc.name {
            return Err(LowerError::WrongAccelerator {
                expected: self.desc.name.clone(),
                found,
            });
        }
        Ok(())
    }

    fn lower_setup(&mut self, op: OpId) -> Result<(), LowerError> {
        self.check_accel(op)?;
        let fields = setup_fields(self.m, op);
        match self.desc.style {
            ConfigStyle::Csr => {
                for (name, value) in fields {
                    let spec = self
                        .desc
                        .field(&name)
                        .ok_or_else(|| LowerError::UnknownField {
                            accelerator: self.desc.name.clone(),
                            field: name.clone(),
                        })?;
                    let vr = self.reg_for(value);
                    self.pb.csr_write(spec.reg, vr);
                    self.shadow.insert(spec.reg, vr);
                }
            }
            ConfigStyle::RoccPairs { launch_funct } => {
                // group freshly-written registers into pairs
                let mut written: HashMap<u16, Reg> = HashMap::new();
                for (name, value) in fields {
                    let spec = self
                        .desc
                        .field(&name)
                        .ok_or_else(|| LowerError::UnknownField {
                            accelerator: self.desc.name.clone(),
                            field: name.clone(),
                        })?;
                    let vr = self.reg_for(value);
                    written.insert(spec.reg, vr);
                }
                let mut functs: Vec<u16> = written.keys().map(|r| r / 2).collect();
                functs.sort_unstable();
                functs.dedup();
                for funct in functs {
                    // the launch-semantic pair is deferred to accfg.launch
                    if funct as u8 == launch_funct {
                        for reg in [funct * 2, funct * 2 + 1] {
                            if let Some(&r) = written.get(&reg) {
                                self.shadow.insert(reg, r);
                            }
                        }
                        continue;
                    }
                    let rs1 = self.pair_half(&written, funct * 2);
                    let rs2 = self.pair_half(&written, funct * 2 + 1);
                    self.pb.rocc(funct as u8, rs1, rs2);
                    self.shadow.insert(funct * 2, rs1);
                    self.shadow.insert(funct * 2 + 1, rs2);
                }
            }
        }
        Ok(())
    }

    /// The host register supplying one half of a RoCC pair: the freshly
    /// written value, the last value that reached this register, or zero.
    fn pair_half(&mut self, written: &HashMap<u16, Reg>, reg: u16) -> Reg {
        written
            .get(&reg)
            .or_else(|| self.shadow.get(&reg))
            .copied()
            .unwrap_or_else(|| self.zero_reg())
    }

    fn lower_launch(&mut self, op: OpId) -> Result<(), LowerError> {
        self.check_accel(op)?;
        match self.desc.style {
            ConfigStyle::Csr => self.pb.launch(),
            ConfigStyle::RoccPairs { launch_funct } => {
                let f = u16::from(launch_funct);
                let rs1 = self.pair_half(&HashMap::new(), f * 2);
                let rs2 = self.pair_half(&HashMap::new(), f * 2 + 1);
                self.pb.rocc(launch_funct, rs1, rs2);
                self.shadow.insert(f * 2, rs1);
                self.shadow.insert(f * 2 + 1, rs2);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accfg::pipeline::{pipeline, OptLevel};
    use accfg::AccelFilter;
    use accfg_ir::{FuncBuilder, Type};
    use accfg_sim::{AccelSim, Inst, Machine};

    /// Builds the IR for one full-tile invocation: C = A·B with given size.
    fn single_tile_ir(desc: &AcceleratorDescriptor, size: i64) -> Module {
        let mut m = Module::new();
        let (mut b, args) =
            FuncBuilder::new_func(&mut m, "kernel", vec![Type::I64, Type::I64, Type::I64]);
        let n = b.const_index(size);
        let stride_c = b.const_index(4 * size);
        let zero = b.const_index(0);
        let name = |reg: u16| desc.field_by_reg(reg).unwrap().name.clone();
        let fields: Vec<(String, accfg_ir::ValueId)> = vec![
            (name(accfg_sim::regmap::A_ADDR), args[0]),
            (name(accfg_sim::regmap::B_ADDR), args[1]),
            (name(accfg_sim::regmap::C_ADDR), args[2]),
            (name(accfg_sim::regmap::M), n),
            (name(accfg_sim::regmap::N), n),
            (name(accfg_sim::regmap::K), n),
            (name(accfg_sim::regmap::STRIDE_A), n),
            (name(accfg_sim::regmap::STRIDE_B), n),
            (name(accfg_sim::regmap::STRIDE_C), stride_c),
            (name(accfg_sim::regmap::FLAGS), zero),
        ];
        let refs: Vec<(&str, accfg_ir::ValueId)> =
            fields.iter().map(|(n, v)| (n.as_str(), *v)).collect();
        let s = b.setup(&desc.name, &refs);
        let t = b.launch(&desc.name, s);
        b.await_token(&desc.name, t);
        b.ret(vec![]);
        m
    }

    fn fill_inputs(machine: &mut Machine, a: u64, b: u64, size: usize) {
        for i in 0..size * size {
            machine
                .mem
                .write_i8(a + i as u64, (i % 5) as i8 - 2)
                .unwrap();
            machine
                .mem
                .write_i8(b + i as u64, (i % 7) as i8 - 3)
                .unwrap();
        }
    }

    fn reference_matmul(machine: &Machine, a: u64, b: u64, size: usize) -> Vec<i32> {
        let mut c = vec![0i32; size * size];
        for i in 0..size {
            for j in 0..size {
                let mut acc = 0i32;
                for k in 0..size {
                    let av = machine.mem.read_i8(a + (i * size + k) as u64).unwrap() as i32;
                    let bv = machine.mem.read_i8(b + (k * size + j) as u64).unwrap() as i32;
                    acc += av * bv;
                }
                c[i * size + j] = acc;
            }
        }
        c
    }

    #[test]
    fn csr_lowering_computes_correct_matmul() {
        let desc = AcceleratorDescriptor::opengemm();
        let m = single_tile_ir(&desc, 8);
        let prog = compile(&m, "kernel", &desc, &[0x100, 0x200, 0x300]).unwrap();
        let mut machine =
            Machine::new(desc.host.clone(), AccelSim::new(desc.accel.clone()), 0x1000);
        fill_inputs(&mut machine, 0x100, 0x200, 8);
        let expected = reference_matmul(&machine, 0x100, 0x200, 8);
        let counters = machine.run(&prog, 100_000).unwrap();
        assert_eq!(counters.launches, 1);
        assert_eq!(machine.mem.read_i32_slice(0x300, 64).unwrap(), expected);
    }

    #[test]
    fn rocc_lowering_computes_correct_matmul() {
        let desc = AcceleratorDescriptor::gemmini();
        let m = single_tile_ir(&desc, 8);
        let prog = compile(&m, "kernel", &desc, &[0x100, 0x200, 0x300]).unwrap();
        let mut machine =
            Machine::new(desc.host.clone(), AccelSim::new(desc.accel.clone()), 0x1000);
        fill_inputs(&mut machine, 0x100, 0x200, 8);
        let expected = reference_matmul(&machine, 0x100, 0x200, 8);
        let counters = machine.run(&prog, 100_000).unwrap();
        assert_eq!(counters.launches, 1);
        assert_eq!(machine.mem.read_i32_slice(0x300, 64).unwrap(), expected);
    }

    #[test]
    fn rocc_lowering_uses_pair_commands() {
        let desc = AcceleratorDescriptor::gemmini();
        let m = single_tile_ir(&desc, 8);
        let prog = compile(&m, "kernel", &desc, &[0x100, 0x200, 0x300]).unwrap();
        let roccs = prog
            .insts()
            .iter()
            .filter(|i| matches!(i, Inst::RoccCmd { .. }))
            .count();
        // core fields cover register pairs 0..=5 (6 commands) + the
        // launch-semantic command itself
        assert_eq!(roccs, 7);
        // no explicit launch instruction on a launch-semantic target
        assert!(!prog.insts().iter().any(|i| matches!(i, Inst::Launch)));
    }

    /// The tiled loop of Section 6: every iteration reconfigures addresses.
    fn tiled_ir(desc: &AcceleratorDescriptor, tiles: i64, tile: i64) -> Module {
        let mut m = Module::new();
        let (mut b, args) =
            FuncBuilder::new_func(&mut m, "tiled", vec![Type::I64, Type::I64, Type::I64]);
        let lb = b.const_index(0);
        let ub = b.const_index(tiles);
        let one = b.const_index(1);
        let name = |reg: u16| desc.field_by_reg(reg).unwrap().name.clone();
        let accel = desc.name.clone();
        b.build_for(lb, ub, one, vec![], |b, iv, _| {
            let tile_c = b.const_index(tile);
            let stride_c = b.const_index(4 * tile);
            let zero = b.const_index(0);
            let a_bytes = b.const_index(tile * tile);
            let c_bytes = b.const_index(4 * tile * tile);
            let a_off = b.muli(iv, a_bytes);
            let c_off = b.muli(iv, c_bytes);
            let a = b.addi(args[0], a_off);
            let c = b.addi(args[2], c_off);
            let fields: Vec<(String, accfg_ir::ValueId)> = vec![
                (name(accfg_sim::regmap::A_ADDR), a),
                (name(accfg_sim::regmap::B_ADDR), args[1]),
                (name(accfg_sim::regmap::C_ADDR), c),
                (name(accfg_sim::regmap::M), tile_c),
                (name(accfg_sim::regmap::N), tile_c),
                (name(accfg_sim::regmap::K), tile_c),
                (name(accfg_sim::regmap::STRIDE_A), tile_c),
                (name(accfg_sim::regmap::STRIDE_B), tile_c),
                (name(accfg_sim::regmap::STRIDE_C), stride_c),
                (name(accfg_sim::regmap::FLAGS), zero),
            ];
            let refs: Vec<(&str, accfg_ir::ValueId)> =
                fields.iter().map(|(n, v)| (n.as_str(), *v)).collect();
            let s = b.setup(&accel, &refs);
            let t = b.launch(&accel, s);
            b.await_token(&accel, t);
            vec![]
        });
        b.ret(vec![]);
        m
    }

    #[test]
    fn dedup_reduces_dynamic_config_instructions() {
        let desc = AcceleratorDescriptor::opengemm();
        let run = |level: OptLevel| {
            let mut m = tiled_ir(&desc, 8, 8);
            pipeline(level, AccelFilter::All).run(&mut m).unwrap();
            let prog = compile(&m, "tiled", &desc, &[0x100, 0x4000, 0x8000]).unwrap();
            let mut machine = Machine::new(
                desc.host.clone(),
                AccelSim::new(desc.accel.clone()),
                0x20000,
            );
            fill_inputs(&mut machine, 0x100, 0x4000, 8);
            machine.run(&prog, 1_000_000).unwrap()
        };
        let base = run(OptLevel::Base);
        let dedup = run(OptLevel::Dedup);
        assert!(
            dedup.insts_config < base.insts_config,
            "base={} dedup={}",
            base.insts_config,
            dedup.insts_config
        );
        assert_eq!(base.launches, dedup.launches);
    }

    #[test]
    fn overlap_reduces_cycles_on_concurrent_target() {
        let desc = AcceleratorDescriptor::opengemm();
        let run = |level: OptLevel| {
            let mut m = tiled_ir(&desc, 8, 16);
            pipeline(level, AccelFilter::All).run(&mut m).unwrap();
            let prog = compile(&m, "tiled", &desc, &[0x400, 0x4000, 0x8000]).unwrap();
            let mut machine = Machine::new(
                desc.host.clone(),
                AccelSim::new(desc.accel.clone()),
                0x20000,
            );
            fill_inputs(&mut machine, 0x400, 0x4000, 16);
            machine.run(&prog, 1_000_000).unwrap()
        };
        let base = run(OptLevel::Base);
        let all = run(OptLevel::All);
        assert!(
            all.cycles < base.cycles,
            "base={} all={}",
            base.cycles,
            all.cycles
        );
        assert!(all.overlap_cycles > base.overlap_cycles, "{all:?}");
    }

    #[test]
    fn all_levels_compute_identical_results() {
        let desc = AcceleratorDescriptor::opengemm();
        let mut reference: Option<Vec<i32>> = None;
        for level in OptLevel::ALL_LEVELS {
            let mut m = tiled_ir(&desc, 4, 8);
            pipeline(level, AccelFilter::All).run(&mut m).unwrap();
            let prog = compile(&m, "tiled", &desc, &[0x100, 0x4000, 0x8000]).unwrap();
            let mut machine = Machine::new(
                desc.host.clone(),
                AccelSim::new(desc.accel.clone()),
                0x20000,
            );
            fill_inputs(&mut machine, 0x100, 0x4000, 8);
            machine.run(&prog, 1_000_000).unwrap();
            let c = machine.mem.read_i32_slice(0x8000, 4 * 64).unwrap();
            match &reference {
                None => reference = Some(c),
                Some(r) => assert_eq!(&c, r, "level={level:?}"),
            }
        }
    }

    #[test]
    fn unknown_field_is_reported() {
        let desc = AcceleratorDescriptor::opengemm();
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let x = b.const_index(1);
        let s = b.setup("opengemm", &[("bogus", x)]);
        let t = b.launch("opengemm", s);
        b.await_token("opengemm", t);
        b.ret(vec![]);
        let e = compile(&m, "f", &desc, &[]).unwrap_err();
        assert!(matches!(e, LowerError::UnknownField { .. }), "{e}");
    }

    #[test]
    fn wrong_accelerator_is_reported() {
        let desc = AcceleratorDescriptor::opengemm();
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let x = b.const_index(1);
        let s = b.setup("gemmini", &[("A", x)]);
        let t = b.launch("gemmini", s);
        b.await_token("gemmini", t);
        b.ret(vec![]);
        let e = compile(&m, "f", &desc, &[]).unwrap_err();
        assert!(matches!(e, LowerError::WrongAccelerator { .. }), "{e}");
    }

    #[test]
    fn opaque_ops_are_rejected() {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        b.opaque("mystery", vec![], vec![], None);
        b.ret(vec![]);
        let desc = AcceleratorDescriptor::opengemm();
        let e = compile(&m, "f", &desc, &[]).unwrap_err();
        assert!(matches!(e, LowerError::UnsupportedOp { .. }), "{e}");
    }

    #[test]
    fn arg_binding_checked() {
        let desc = AcceleratorDescriptor::opengemm();
        let m = single_tile_ir(&desc, 4);
        assert!(matches!(
            compile(&m, "kernel", &desc, &[1, 2]),
            Err(LowerError::ArgCount {
                expected: 3,
                provided: 2
            })
        ));
        assert!(matches!(
            compile(&m, "nope", &desc, &[]),
            Err(LowerError::NoSuchFunc(_))
        ));
    }

    #[test]
    fn scf_if_lowering_selects_configuration() {
        let desc = AcceleratorDescriptor::opengemm();
        let mut m = Module::new();
        let (mut b, args) = FuncBuilder::new_func(&mut m, "f", vec![Type::I64]);
        let one = b.const_index(1);
        let cond = b.cmpi(CmpPredicate::Eq, args[0], one);
        let size_a = b.const_index(4);
        let size_b = b.const_index(8);
        let size = b.build_if(cond, |_| vec![size_a], |_| vec![size_b]);
        let stride_c = b.muli(size[0], size_a); // 4·size
        let a = b.const_index(0x100);
        let bb = b.const_index(0x200);
        let c = b.const_index(0x400);
        let s = b.setup(
            "opengemm",
            &[
                ("A", a),
                ("B", bb),
                ("C", c),
                ("M", size[0]),
                ("N", size[0]),
                ("K", size[0]),
                ("stride_A", size[0]),
                ("stride_B", size[0]),
                ("stride_C", stride_c),
            ],
        );
        let t = b.launch("opengemm", s);
        b.await_token("opengemm", t);
        b.ret(vec![]);

        for (arg, want_macs) in [(1i64, 64u64), (0, 512)] {
            let prog = compile(&m, "f", &desc, &[arg]).unwrap();
            let mut machine =
                Machine::new(desc.host.clone(), AccelSim::new(desc.accel.clone()), 0x1000);
            fill_inputs(&mut machine, 0x100, 0x200, 8);
            machine.run(&prog, 100_000).unwrap();
            assert_eq!(machine.accel.stats.macs, want_macs, "arg={arg}");
        }
    }
}
