//! # accfg-roofline: the configuration roofline model
//!
//! The analytical contribution of *"The Configuration Wall"* (ASPLOS 2026),
//! Section 4: an extension of the classical roofline model that treats the
//! host-to-accelerator *configuration interface* as a first-class
//! performance ceiling alongside memory bandwidth and peak compute.
//!
//! - [`ProcessorRoofline`] — Equation 1 (Williams et al.'s model)
//! - [`ConfigRoofline`] — Equations 2 (concurrent) and 3 (sequential)
//! - [`effective_config_bandwidth`] — Equation 4
//! - [`Roofsurface`] — Equation 5, the combined three-plane model
//! - [`plot`] — ASCII renderings of Figures 3, 4, 5 and 12
//!
//! ```
//! use accfg_roofline::{ConfigRoofline, Bound};
//!
//! // a fast accelerator behind a slow configuration interface
//! let r = ConfigRoofline { peak: 1024.0, config_bandwidth: 1.0 };
//! // a small workload: few ops per configured byte → configuration bound
//! assert_eq!(r.bound(64.0), Bound::Configuration);
//! // making the accelerator faster would NOT help (the configuration wall):
//! let faster = ConfigRoofline { peak: 2048.0, ..r };
//! assert_eq!(faster.attainable_concurrent(64.0), r.attainable_concurrent(64.0));
//! ```

#![warn(missing_docs)]

pub mod model;
pub mod plot;

pub use model::{
    effective_config_bandwidth, Bound, ConfigRoofline, ProcessorRoofline, Roofsurface,
};
pub use plot::{render, render_surface, Curve, PlotConfig, Series};
