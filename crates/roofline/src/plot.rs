//! ASCII rendering of roofline charts.
//!
//! The paper's Figures 3, 4, 5 and 12 are log-log roofline plots; the
//! benchmark harnesses render terminal versions of them with these
//! utilities (plus machine-readable CSV alongside).

use crate::model::{Bound, Roofsurface};

/// A named scatter series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Marker character.
    pub marker: char,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

/// A roofline curve: `(label, marker, attainable-performance function)`.
pub type Curve<'a> = (&'a str, char, &'a dyn Fn(f64) -> f64);

/// Axis and canvas configuration for a log-log plot.
#[derive(Debug, Clone)]
pub struct PlotConfig {
    /// Canvas width in characters.
    pub width: usize,
    /// Canvas height in characters.
    pub height: usize,
    /// X axis range (must be positive; the axis is logarithmic).
    pub x_range: (f64, f64),
    /// Y axis range (must be positive; the axis is logarithmic).
    pub y_range: (f64, f64),
    /// X axis label.
    pub x_label: String,
    /// Y axis label.
    pub y_label: String,
}

impl Default for PlotConfig {
    fn default() -> Self {
        Self {
            width: 72,
            height: 22,
            x_range: (1.0, 1e4),
            y_range: (1.0, 2e3),
            x_label: "I_OC (ops/byte)".into(),
            y_label: "P (ops/cycle)".into(),
        }
    }
}

fn log_pos(v: f64, range: (f64, f64), cells: usize) -> Option<usize> {
    if v <= 0.0 || range.0 <= 0.0 || range.1 <= range.0 {
        return None;
    }
    let t = (v.ln() - range.0.ln()) / (range.1.ln() - range.0.ln());
    if !(0.0..=1.0).contains(&t) {
        return None;
    }
    Some((t * (cells - 1) as f64).round() as usize)
}

/// Renders a log-log plot with roofline curves (sampled per column) and
/// scatter series.
///
/// Curves are `(label, marker, f)` where `f` maps x to attainable y.
pub fn render(cfg: &PlotConfig, curves: &[Curve<'_>], series: &[Series]) -> String {
    let (w, h) = (cfg.width, cfg.height);
    let mut grid = vec![vec![' '; w]; h];

    // curves: sample x at every column
    #[allow(clippy::needless_range_loop)]
    for col in 0..w {
        let t = col as f64 / (w - 1) as f64;
        let x = (cfg.x_range.0.ln() + t * (cfg.x_range.1.ln() - cfg.x_range.0.ln())).exp();
        for (_, marker, f) in curves {
            let y = f(x);
            if let Some(row) = log_pos(y, cfg.y_range, h) {
                let r = h - 1 - row;
                if grid[r][col] == ' ' {
                    grid[r][col] = *marker;
                }
            }
        }
    }
    // scatter series drawn on top
    for s in series {
        for &(x, y) in &s.points {
            if let (Some(col), Some(row)) = (log_pos(x, cfg.x_range, w), log_pos(y, cfg.y_range, h))
            {
                grid[h - 1 - row][col] = s.marker;
            }
        }
    }

    let mut out = String::new();
    out.push_str(&format!("{} (log scale)\n", cfg.y_label));
    for (i, row) in grid.iter().enumerate() {
        let y_tick = if i == 0 {
            format!("{:>9.1} |", cfg.y_range.1)
        } else if i == h - 1 {
            format!("{:>9.1} |", cfg.y_range.0)
        } else {
            format!("{:>9} |", "")
        };
        out.push_str(&y_tick);
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&format!("{:>10}+{}\n", "", "-".repeat(w)));
    out.push_str(&format!(
        "{:>10} {:<12.2}{:>width$.1}\n",
        "",
        cfg.x_range.0,
        cfg.x_range.1,
        width = w - 12
    ));
    out.push_str(&format!("{:>10} {} (log scale)\n", "", cfg.x_label));
    for (label, marker, _) in curves {
        out.push_str(&format!("    {marker}  {label}\n"));
    }
    for s in series {
        out.push_str(&format!("    {}  {}\n", s.marker, s.label));
    }
    out
}

/// Renders the roofsurface (Figure 5) as a region map over
/// (I_operational, I_OC): which of the three planes limits performance.
///
/// Legend: `#` compute bound, `m` memory bound, `c` configuration bound.
pub fn render_surface(
    surface: &Roofsurface,
    x_range: (f64, f64),
    y_range: (f64, f64),
    width: usize,
    height: usize,
) -> String {
    let mut out = String::new();
    out.push_str("I_OC (ops/byte, log scale)\n");
    for row in (0..height).rev() {
        let ty = row as f64 / (height - 1) as f64;
        let i_oc = (y_range.0.ln() + ty * (y_range.1.ln() - y_range.0.ln())).exp();
        out.push_str(&format!("{i_oc:>9.1} |"));
        #[allow(clippy::needless_range_loop)]
        for col in 0..width {
            let tx = col as f64 / (width - 1) as f64;
            let i_op = (x_range.0.ln() + tx * (x_range.1.ln() - x_range.0.ln())).exp();
            let ch = match surface.limiting_factor(i_op, i_oc) {
                Bound::Compute => '#',
                Bound::Memory => 'm',
                Bound::Configuration => 'c',
            };
            out.push(ch);
        }
        out.push('\n');
    }
    out.push_str(&format!("{:>10}+{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:>10} {:<10.2}{:>width$.1}   I_operational (ops/byte, log scale)\n",
        "",
        x_range.0,
        x_range.1,
        width = width - 10
    ));
    out.push_str("    # compute bound   m memory bound   c configuration bound\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ConfigRoofline;

    #[test]
    fn renders_rooflines_and_points() {
        let r = ConfigRoofline {
            peak: 512.0,
            config_bandwidth: 1.0,
        };
        let cfg = PlotConfig::default();
        let seq = |x: f64| r.attainable_sequential(x);
        let conc = |x: f64| r.attainable_concurrent(x);
        let series = [Series {
            label: "measured".into(),
            marker: 'o',
            points: vec![(100.0, 90.0), (1000.0, 400.0)],
        }];
        let text = render(
            &cfg,
            &[("sequential", '.', &seq), ("concurrent", '-', &conc)],
            &series,
        );
        assert!(text.contains('o'));
        assert!(text.contains('-'));
        assert!(text.contains('.'));
        assert!(text.contains("measured"));
        assert!(text.contains("I_OC"));
    }

    #[test]
    fn out_of_range_points_are_dropped() {
        let cfg = PlotConfig {
            x_range: (1.0, 10.0),
            y_range: (1.0, 10.0),
            ..Default::default()
        };
        let series = [Series {
            label: "out".into(),
            marker: 'X',
            points: vec![(100.0, 100.0), (0.0, -3.0)],
        }];
        let text = render(&cfg, &[], &series);
        // legend contains the label but no plotted marker row has X
        let plot_rows: Vec<&str> = text.lines().filter(|l| l.contains('|')).collect();
        assert!(plot_rows.iter().all(|l| !l.contains('X')), "{text}");
    }

    #[test]
    fn surface_shows_three_regions() {
        let s = Roofsurface {
            peak: 512.0,
            memory_bandwidth: 16.0,
            config_bandwidth: 1.0,
        };
        let text = render_surface(&s, (0.1, 1e4), (0.1, 1e5), 40, 12);
        assert!(text.contains('#'));
        assert!(text.contains('m'));
        assert!(text.contains('c'));
    }

    #[test]
    fn log_positions_are_monotonic() {
        let mut last = 0;
        for v in [1.0, 3.0, 10.0, 100.0, 999.0] {
            let p = log_pos(v, (1.0, 1000.0), 50).unwrap();
            assert!(p >= last);
            last = p;
        }
        assert_eq!(log_pos(0.5, (1.0, 1000.0), 50), None);
        assert_eq!(log_pos(2000.0, (1.0, 1000.0), 50), None);
    }
}
