//! The configuration roofline model (Section 4 of the paper).
//!
//! - Equation 1: the classical processor roofline ([`ProcessorRoofline`])
//! - Equation 2: the concurrent-configuration roofline
//! - Equation 3: the sequential-configuration roofline
//! - Equation 4: effective configuration bandwidth
//! - Equation 5: the combined "roofsurface" ([`Roofsurface`])

/// What limits performance at a given intensity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bound {
    /// Left of the memory knee: limited by memory bandwidth.
    Memory,
    /// Left of the configuration knee: limited by configuration bandwidth —
    /// the program hit the configuration wall.
    Configuration,
    /// Right of every knee: limited by the datapath.
    Compute,
}

/// The classical processor roofline (Williams et al.), Equation 1.
///
/// # Examples
///
/// ```
/// use accfg_roofline::ProcessorRoofline;
///
/// let r = ProcessorRoofline { peak: 512.0, memory_bandwidth: 16.0 };
/// assert_eq!(r.attainable(1.0), 16.0);    // memory bound
/// assert_eq!(r.attainable(1000.0), 512.0); // compute bound
/// assert_eq!(r.knee(), 32.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessorRoofline {
    /// Peak processor performance `P_peak` in ops/cycle.
    pub peak: f64,
    /// Peak memory bandwidth `BW_memory` in bytes/cycle.
    pub memory_bandwidth: f64,
}

impl ProcessorRoofline {
    /// Equation 1: attainable performance at operational intensity
    /// `i_op` (ops/byte).
    pub fn attainable(&self, i_op: f64) -> f64 {
        self.peak.min(self.memory_bandwidth * i_op)
    }

    /// The knee point: the operational intensity where the memory slope
    /// meets the compute ceiling.
    pub fn knee(&self) -> f64 {
        self.peak / self.memory_bandwidth
    }

    /// Memory- or compute-bound classification.
    pub fn bound(&self, i_op: f64) -> Bound {
        if i_op < self.knee() {
            Bound::Memory
        } else {
            Bound::Compute
        }
    }
}

/// The configuration roofline (Sections 4.2–4.3): Equations 2 and 3.
///
/// # Examples
///
/// The Gemmini worked example of Section 4.6:
///
/// ```
/// use accfg_roofline::ConfigRoofline;
///
/// let r = ConfigRoofline {
///     peak: 512.0,
///     config_bandwidth: 16.0 / 9.0, // 16 B per RoCC, 3 instrs × 3 cycles
/// };
/// let i_oc = 524_288.0 / (160.0 * 16.0); // ops per configuration byte
/// let utilization = r.attainable_sequential(i_oc) / r.peak;
/// assert!((utilization - 0.4149).abs() < 0.005); // the paper's 41.49 %
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfigRoofline {
    /// Peak accelerator performance `P_peak` in ops/cycle.
    pub peak: f64,
    /// Configuration bandwidth `BW_config` in bytes/cycle (theoretical, or
    /// the effective bandwidth of Equation 4).
    pub config_bandwidth: f64,
}

impl ConfigRoofline {
    /// Equation 2: attainable performance with concurrent configuration at
    /// operation-to-configuration intensity `i_oc` (ops/byte).
    pub fn attainable_concurrent(&self, i_oc: f64) -> f64 {
        self.peak.min(self.config_bandwidth * i_oc)
    }

    /// Equation 3: attainable performance with sequential configuration —
    /// the harmonic combination; configuration time always adds to total
    /// time, so this curve lies strictly below Equation 2 and approaches it
    /// asymptotically.
    pub fn attainable_sequential(&self, i_oc: f64) -> f64 {
        let config_term = self.config_bandwidth * i_oc;
        if config_term == 0.0 {
            return 0.0;
        }
        1.0 / (1.0 / self.peak + 1.0 / config_term)
    }

    /// The knee point `P_peak / BW_config`: left of it the system is
    /// configuration bound.
    pub fn knee(&self) -> f64 {
        self.peak / self.config_bandwidth
    }

    /// Configuration- or compute-bound classification (by the concurrent
    /// roofline's knee, as in Figure 4).
    pub fn bound(&self, i_oc: f64) -> Bound {
        if i_oc < self.knee() {
            Bound::Configuration
        } else {
            Bound::Compute
        }
    }

    /// Fraction of peak attainable sequentially at `i_oc`.
    pub fn utilization_sequential(&self, i_oc: f64) -> f64 {
        self.attainable_sequential(i_oc) / self.peak
    }

    /// Fraction of peak attainable concurrently at `i_oc`.
    pub fn utilization_concurrent(&self, i_oc: f64) -> f64 {
        self.attainable_concurrent(i_oc) / self.peak
    }
}

/// Equation 4: effective configuration bandwidth — configuration bytes over
/// the time to *calculate* them plus the time to *set* them.
///
/// # Examples
///
/// Section 4.6's Gemmini numbers: 160 setup + 775 calculation instructions
/// at 3 cycles each for 2560 configuration bytes.
///
/// ```
/// use accfg_roofline::effective_config_bandwidth;
///
/// let bw = effective_config_bandwidth(160.0 * 16.0, 775.0 * 3.0, 160.0 * 3.0);
/// assert!((bw - 0.913).abs() < 0.001);
/// ```
pub fn effective_config_bandwidth(config_bytes: f64, calc_cycles: f64, set_cycles: f64) -> f64 {
    config_bytes / (calc_cycles + set_cycles)
}

/// Equation 5: the combined processor + configuration "roofsurface"
/// (Figure 5). Performance is the minimum of the compute ceiling, the
/// memory slope, and the configuration slope.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Roofsurface {
    /// Peak performance in ops/cycle.
    pub peak: f64,
    /// Memory bandwidth in bytes/cycle.
    pub memory_bandwidth: f64,
    /// Configuration bandwidth in bytes/cycle.
    pub config_bandwidth: f64,
}

impl Roofsurface {
    /// Equation 5 at operational intensity `i_op` and
    /// operation-to-configuration intensity `i_oc`.
    pub fn attainable(&self, i_op: f64, i_oc: f64) -> f64 {
        self.peak
            .min(self.memory_bandwidth * i_op)
            .min(self.config_bandwidth * i_oc)
    }

    /// Which plane of the roofsurface is the binding constraint.
    pub fn limiting_factor(&self, i_op: f64, i_oc: f64) -> Bound {
        let memory = self.memory_bandwidth * i_op;
        let config = self.config_bandwidth * i_oc;
        if config <= memory && config < self.peak {
            Bound::Configuration
        } else if memory < self.peak {
            Bound::Memory
        } else {
            Bound::Compute
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gemmini_roofline() -> ConfigRoofline {
        ConfigRoofline {
            peak: 512.0,
            config_bandwidth: 16.0 / 9.0,
        }
    }

    #[test]
    fn processor_roofline_equation1() {
        let r = ProcessorRoofline {
            peak: 512.0,
            memory_bandwidth: 32.0,
        };
        assert_eq!(r.attainable(1.0), 32.0);
        assert_eq!(r.attainable(16.0), 512.0);
        assert_eq!(r.knee(), 16.0);
        assert_eq!(r.bound(1.0), Bound::Memory);
        assert_eq!(r.bound(100.0), Bound::Compute);
    }

    #[test]
    fn section_4_6_theoretical_bandwidth() {
        // 16 bytes per RoCC command, 3 instructions, 3 cycles each
        let bw = gemmini_roofline().config_bandwidth;
        assert!((bw - 1.7778).abs() < 1e-3, "{bw}");
    }

    #[test]
    fn section_4_6_sequential_utilization() {
        // 524,288 ops over 160 RoCC instructions × 16 bytes. (The paper
        // prints 525,288 and 205.19 ops/byte — a typo for 2·64³ = 524,288,
        // i.e. 204.8 ops/byte; the resulting utilization matches to <0.5 %.)
        let r = gemmini_roofline();
        let i_oc: f64 = 524_288.0 / 2560.0;
        assert!((i_oc - 204.8).abs() < 1e-9);
        let u = r.utilization_sequential(i_oc);
        assert!((u - 0.4149).abs() < 0.007, "utilization {u}");
    }

    #[test]
    fn section_4_6_effective_utilization() {
        // 935 total instructions: 160 setup + 775 calculation
        let bw_eff = effective_config_bandwidth(2560.0, 775.0 * 3.0, 160.0 * 3.0);
        assert!((bw_eff - 0.9127).abs() < 1e-3, "{bw_eff}");
        let r = ConfigRoofline {
            peak: 512.0,
            config_bandwidth: bw_eff,
        };
        let u = r.utilization_sequential(204.8);
        assert!((u - 0.2678).abs() < 0.005, "utilization {u}");
    }

    #[test]
    fn sequential_is_strictly_below_concurrent() {
        let r = gemmini_roofline();
        for i_oc in [0.1, 1.0, 10.0, 100.0, 1_000.0, 100_000.0] {
            let seq = r.attainable_sequential(i_oc);
            let conc = r.attainable_concurrent(i_oc);
            assert!(seq < conc, "i_oc={i_oc}: {seq} !< {conc}");
        }
    }

    #[test]
    fn sequential_approaches_concurrent_asymptotically() {
        let r = gemmini_roofline();
        let ratio = r.attainable_sequential(1e9) / r.attainable_concurrent(1e9);
        assert!(ratio > 0.999, "{ratio}");
    }

    #[test]
    fn knee_point_gap_is_exactly_half() {
        // Section 4.3: the largest discrepancy between sequential and
        // concurrent is at the knee, where sequential attains exactly half
        let r = gemmini_roofline();
        let knee = r.knee();
        let seq = r.attainable_sequential(knee);
        let conc = r.attainable_concurrent(knee);
        assert!((seq / conc - 0.5).abs() < 1e-12, "{}", seq / conc);
        // and the gap shrinks away from the knee
        for factor in [0.1, 10.0] {
            let s = r.attainable_sequential(knee * factor);
            let c = r.attainable_concurrent(knee * factor);
            assert!(s / c > 0.5, "factor={factor}");
        }
    }

    #[test]
    fn boundedness_classification() {
        let r = gemmini_roofline();
        assert_eq!(r.bound(r.knee() * 0.5), Bound::Configuration);
        assert_eq!(r.bound(r.knee() * 2.0), Bound::Compute);
    }

    #[test]
    fn roofsurface_min_of_three_planes() {
        let s = Roofsurface {
            peak: 512.0,
            memory_bandwidth: 32.0,
            config_bandwidth: 2.0,
        };
        // low I_OC: configuration wall even when memory is fine
        assert_eq!(s.attainable(1000.0, 10.0), 20.0);
        assert_eq!(s.limiting_factor(1000.0, 10.0), Bound::Configuration);
        // low I_op: memory bound
        assert_eq!(s.attainable(1.0, 1e9), 32.0);
        assert_eq!(s.limiting_factor(1.0, 1e9), Bound::Memory);
        // both high: compute bound
        assert_eq!(s.attainable(1e9, 1e9), 512.0);
        assert_eq!(s.limiting_factor(1e9, 1e9), Bound::Compute);
    }

    #[test]
    fn increasing_config_bandwidth_moves_knee_left() {
        // Section 4.2: raising BW_config shifts the knee (and thus the
        // config-bound region boundary) to the left
        let slow = ConfigRoofline {
            peak: 512.0,
            config_bandwidth: 1.0,
        };
        let fast = ConfigRoofline {
            peak: 512.0,
            config_bandwidth: 4.0,
        };
        assert!(fast.knee() < slow.knee());
        // a workload config-bound on the slow system escapes on the fast one
        let i_oc = 256.0;
        assert_eq!(slow.bound(i_oc), Bound::Configuration);
        assert_eq!(fast.bound(i_oc), Bound::Compute);
    }
}
