//! Test-data generation and reference results for matmul workloads.

use crate::spec::{MatmulLayout, MatmulSpec};
use accfg_sim::{MemError, Memory};

/// A tiny deterministic PRNG (SplitMix64-style) so workloads are
/// reproducible without external dependencies.
#[derive(Debug, Clone)]
pub struct SplitMix {
    state: u64,
}

impl SplitMix {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A small i8 in `[-8, 7]`, keeping i32 accumulators far from overflow
    /// even at depth 512.
    pub fn next_small_i8(&mut self) -> i8 {
        ((self.next_u64() >> 33) % 16) as i8 - 8
    }
}

/// Fills A and B with small pseudorandom i8 values.
///
/// # Errors
/// Fails if the layout exceeds the memory capacity.
pub fn fill_inputs(
    mem: &mut Memory,
    spec: &MatmulSpec,
    layout: &MatmulLayout,
    seed: u64,
) -> Result<(), MemError> {
    let mut rng = SplitMix::new(seed);
    for i in 0..(spec.m * spec.k) {
        mem.write_i8(layout.a_addr as u64 + i as u64, rng.next_small_i8())?;
    }
    for i in 0..(spec.k * spec.n) {
        mem.write_i8(layout.b_addr as u64 + i as u64, rng.next_small_i8())?;
    }
    Ok(())
}

/// Computes the reference `C = act(A · B)` from the matrices in memory.
///
/// # Errors
/// Fails on out-of-bounds reads.
pub fn reference_c(
    mem: &Memory,
    spec: &MatmulSpec,
    layout: &MatmulLayout,
) -> Result<Vec<i32>, MemError> {
    let (m, n, k) = (spec.m as u64, spec.n as u64, spec.k as u64);
    let mut c = vec![0i32; (m * n) as usize];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0i32;
            for kk in 0..k {
                let a = mem.read_i8(layout.a_addr as u64 + i * k + kk)? as i32;
                let b = mem.read_i8(layout.b_addr as u64 + kk * n + j)? as i32;
                acc = acc.wrapping_add(a.wrapping_mul(b));
            }
            if spec.relu {
                acc = acc.max(0);
            }
            c[(i * n + j) as usize] = acc;
        }
    }
    Ok(c)
}

/// Compares the C region in memory against the reference result.
///
/// # Errors
/// Returns a description of the first mismatching element, or a memory
/// fault.
pub fn check_result(mem: &Memory, spec: &MatmulSpec, layout: &MatmulLayout) -> Result<(), String> {
    let expected = reference_c(mem, spec, layout).map_err(|e| e.to_string())?;
    for (idx, &want) in expected.iter().enumerate() {
        let addr = layout.c_addr as u64 + 4 * idx as u64;
        let got = mem.read_i32(addr).map_err(|e| e.to_string())?;
        if got != want {
            let (i, j) = (idx as i64 / spec.n, idx as i64 % spec.n);
            return Err(format!("C[{i}][{j}] = {got}, expected {want}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_small() {
        let mut a = SplitMix::new(42);
        let mut b = SplitMix::new(42);
        for _ in 0..100 {
            let va = a.next_small_i8();
            assert_eq!(va, b.next_small_i8());
            assert!((-8..=7).contains(&va));
        }
    }

    #[test]
    fn reference_matches_hand_computation() {
        let spec = MatmulSpec::new((2, 2, 2), (2, 2, 2)).unwrap();
        let layout = MatmulLayout::at(0, &spec);
        let mut mem = Memory::new(layout.end as usize);
        // A = [[1,2],[3,4]], B = [[5,6],[7,8]]
        for (i, v) in [1i8, 2, 3, 4].iter().enumerate() {
            mem.write_i8(layout.a_addr as u64 + i as u64, *v).unwrap();
        }
        for (i, v) in [5i8, 6, 7, 8].iter().enumerate() {
            mem.write_i8(layout.b_addr as u64 + i as u64, *v).unwrap();
        }
        let c = reference_c(&mem, &spec, &layout).unwrap();
        assert_eq!(c, vec![19, 22, 43, 50]);
    }

    #[test]
    fn check_result_detects_mismatch() {
        let spec = MatmulSpec::new((2, 2, 2), (2, 2, 2)).unwrap();
        let layout = MatmulLayout::at(0, &spec);
        let mut mem = Memory::new(layout.end as usize);
        fill_inputs(&mut mem, &spec, &layout, 7).unwrap();
        // C is all zeros; unless the reference is zero too, this must fail
        let reference = reference_c(&mem, &spec, &layout).unwrap();
        if reference.iter().any(|&v| v != 0) {
            assert!(check_result(&mem, &spec, &layout).is_err());
        }
        // write the correct values and it passes
        for (idx, v) in reference.iter().enumerate() {
            mem.write_i32(layout.c_addr as u64 + 4 * idx as u64, *v)
                .unwrap();
        }
        check_result(&mem, &spec, &layout).unwrap();
    }
}
