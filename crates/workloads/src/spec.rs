//! Workload specifications: problem shapes and tiling policies.

use std::error::Error;
use std::fmt;

/// An invalid workload specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// What is wrong.
    pub message: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid workload spec: {}", self.message)
    }
}

impl Error for SpecError {}

/// A tiled matrix-multiplication workload `C[m×n] = A[m×k] · B[k×n]`
/// (i8 inputs, i32 outputs), split into `tile_m × tile_k × tile_n` macro
/// operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatmulSpec {
    /// Output rows.
    pub m: i64,
    /// Output columns.
    pub n: i64,
    /// Reduction depth.
    pub k: i64,
    /// Tile rows per invocation.
    pub tile_m: i64,
    /// Tile reduction depth per invocation.
    pub tile_k: i64,
    /// Tile columns per invocation.
    pub tile_n: i64,
    /// Apply ReLU to the output (only allowed when `tile_k == k`, since a
    /// partial accumulation must not be clamped).
    pub relu: bool,
}

impl MatmulSpec {
    /// Validates and builds a spec.
    ///
    /// # Errors
    ///
    /// Dimensions must be positive, tiles must divide the problem, and ReLU
    /// requires an untiled reduction.
    pub fn new(
        (m, n, k): (i64, i64, i64),
        (tile_m, tile_n, tile_k): (i64, i64, i64),
    ) -> Result<Self, SpecError> {
        let err = |message: &str| {
            Err(SpecError {
                message: message.to_string(),
            })
        };
        if m <= 0 || n <= 0 || k <= 0 || tile_m <= 0 || tile_n <= 0 || tile_k <= 0 {
            return err("all dimensions must be positive");
        }
        if m % tile_m != 0 || n % tile_n != 0 || k % tile_k != 0 {
            return err("tile sizes must divide the problem dimensions");
        }
        Ok(Self {
            m,
            n,
            k,
            tile_m,
            tile_n,
            tile_k,
            relu: false,
        })
    }

    /// Enables ReLU on the output.
    ///
    /// # Errors
    ///
    /// ReLU requires `tile_k == k`.
    pub fn with_relu(mut self) -> Result<Self, SpecError> {
        if self.tile_k != self.k {
            return Err(SpecError {
                message: "relu requires an untiled reduction (tile_k == k)".into(),
            });
        }
        self.relu = true;
        Ok(self)
    }

    /// The OpenGeMM evaluation shape (Section 6.2): `size`² matrices with
    /// 8-by-`size`-by-8 tiles.
    ///
    /// # Errors
    /// `size` must be a positive multiple of 8.
    pub fn opengemm_paper(size: i64) -> Result<Self, SpecError> {
        Self::new((size, size, size), (8, 8, size))
    }

    /// The Gemmini evaluation shape (Section 6.1): `size`² matrices, one
    /// coarse-grained `gemmini_loop_ws`-style invocation per 64-wide
    /// column-strip tile (64 × k × 64 — the weight-stationary hardware loop
    /// keeps the full reduction on-chip, so invocations grow quadratically
    /// with size, matching the paper's utilization curve).
    ///
    /// # Errors
    /// `size` must be positive and, above 64, a multiple of 64.
    pub fn gemmini_paper(size: i64) -> Result<Self, SpecError> {
        let tile = size.min(64);
        Self::new((size, size, size), (tile, tile, size))
    }

    /// Tile grid dimensions `(ti, tj, tk)`.
    pub fn tiles(&self) -> (i64, i64, i64) {
        (
            self.m / self.tile_m,
            self.n / self.tile_n,
            self.k / self.tile_k,
        )
    }

    /// Total number of accelerator invocations.
    pub fn invocations(&self) -> i64 {
        let (ti, tj, tk) = self.tiles();
        ti * tj * tk
    }

    /// Total arithmetic operations (2 per MAC).
    pub fn total_ops(&self) -> i64 {
        2 * self.m * self.n * self.k
    }

    /// `true` if the reduction dimension is tiled (partial accumulation).
    pub fn accumulates(&self) -> bool {
        self.tile_k != self.k
    }
}

/// Memory placement for one matmul: A, then B, then C, each page-aligned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatmulLayout {
    /// Base address of A (`m × k` i8 elements, row-major).
    pub a_addr: i64,
    /// Base address of B (`k × n` i8 elements, row-major).
    pub b_addr: i64,
    /// Base address of C (`m × n` i32 elements, row-major).
    pub c_addr: i64,
    /// First byte past the workload's memory.
    pub end: i64,
}

impl MatmulLayout {
    /// Lays the three matrices out starting at `base`.
    pub fn at(base: i64, spec: &MatmulSpec) -> Self {
        let align = |x: i64| (x + 0xFFF) & !0xFFF;
        let a_addr = align(base);
        let b_addr = align(a_addr + spec.m * spec.k);
        let c_addr = align(b_addr + spec.k * spec.n);
        let end = align(c_addr + 4 * spec.m * spec.n);
        Self {
            a_addr,
            b_addr,
            c_addr,
            end,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_divisibility() {
        assert!(MatmulSpec::new((64, 64, 64), (8, 8, 8)).is_ok());
        assert!(MatmulSpec::new((64, 64, 64), (7, 8, 8)).is_err());
        assert!(MatmulSpec::new((0, 64, 64), (8, 8, 8)).is_err());
        assert!(MatmulSpec::new((64, 64, 64), (8, 8, -8)).is_err());
    }

    #[test]
    fn relu_needs_untiled_reduction() {
        let s = MatmulSpec::new((64, 64, 64), (8, 8, 64)).unwrap();
        assert!(s.with_relu().is_ok());
        let s = MatmulSpec::new((64, 64, 64), (8, 8, 8)).unwrap();
        assert!(s.with_relu().is_err());
    }

    #[test]
    fn paper_shapes() {
        let og = MatmulSpec::opengemm_paper(128).unwrap();
        assert_eq!(og.tiles(), (16, 16, 1));
        assert_eq!(og.invocations(), 256);
        assert!(!og.accumulates());

        let small = MatmulSpec::gemmini_paper(32).unwrap();
        assert_eq!(small.invocations(), 1); // single invocation below 64
        let big = MatmulSpec::gemmini_paper(128).unwrap();
        assert_eq!(big.invocations(), 4); // (128/64)² column strips
        assert!(!big.accumulates()); // full-k strips need no accumulation
    }

    #[test]
    fn ops_count() {
        let s = MatmulSpec::opengemm_paper(64).unwrap();
        assert_eq!(s.total_ops(), 2 * 64 * 64 * 64);
    }

    #[test]
    fn layout_is_disjoint_and_aligned() {
        let s = MatmulSpec::opengemm_paper(64).unwrap();
        let l = MatmulLayout::at(0x1000, &s);
        assert!(l.a_addr % 0x1000 == 0);
        assert!(l.b_addr >= l.a_addr + 64 * 64);
        assert!(l.c_addr >= l.b_addr + 64 * 64);
        assert!(l.end >= l.c_addr + 4 * 64 * 64);
    }
}
