//! # accfg-workloads: workload generators for the evaluation
//!
//! Step 1 of the paper's pipeline (Figure 8): frontends that emit
//! accelerator dispatches as `accfg` setup/launch/await clusters. The
//! generators produce the *unoptimized* IR a C frontend with volatile
//! inline assembly would pin down — every improvement measured in the
//! evaluation comes from the `accfg` passes.
//!
//! - [`MatmulSpec`] / [`MatmulLayout`]: problem shapes, tiling policies
//!   (including the exact evaluation shapes of Sections 6.1 and 6.2), and
//!   memory placement;
//! - [`matmul_ir`] / [`tiled_collapsed_ir`] / [`tiled_nested_ir`]: tiled
//!   matrix-multiplication kernels;
//! - [`layer_sequence_ir`]: MLP-style back-to-back layer dispatches;
//! - [`data`]: deterministic input generation and reference results for
//!   functional checking;
//! - [`traffic`]: deterministic open-loop request streams for the
//!   `accfg-runtime` serving layer.

#![warn(missing_docs)]

pub mod data;
pub mod gen;
pub mod spec;
pub mod traffic;

pub use data::{check_result, fill_inputs, reference_c, SplitMix};
pub use gen::{
    gemmini_ws_ir, layer_sequence_ir, matmul_ir, single_invocation_ir, tiled_collapsed_ir,
    tiled_nested_ir,
};
pub use spec::{MatmulLayout, MatmulSpec, SpecError};
pub use traffic::{
    mixed_platform_classes, mixed_serving_classes, shape_heavy_classes, BurstyConfig,
    ClosedLoopConfig, TrafficClass, TrafficConfig, TrafficRequest,
};
