//! IR generators: step 1 of the paper's pipeline (Figure 8) — emitting
//! accelerator dispatches as disjoint setup/launch/await clusters
//! (Figure 6), exactly as a frontend would.
//!
//! The generated code is deliberately *unoptimized*: every invocation
//! recomputes its tile addresses and re-materializes every constant, which
//! is what the volatile-inline-assembly C baselines of the paper pin into
//! the binary. All improvement must come from the compiler passes.

use crate::spec::{MatmulLayout, MatmulSpec};
use accfg_ir::{CmpPredicate, FuncBuilder, Module, Type, ValueId};
use accfg_sim::{flags as accel_flags, regmap};
use accfg_targets::AcceleratorDescriptor;

/// The target's names for the canonical tile-descriptor roles.
#[derive(Debug, Clone)]
struct Names {
    a: String,
    b: String,
    c: String,
    m: String,
    n: String,
    k: String,
    stride_a: String,
    stride_b: String,
    stride_c: String,
    d: Option<String>,
    stride_d: Option<String>,
    flags: String,
    /// OpenGeMM-style data-streamer CSRs (absent on RoCC targets).
    streamers: Option<StreamerNames>,
}

#[derive(Debug, Clone)]
struct StreamerNames {
    a_bound: String,
    a_stride: String,
    b_bound: String,
    b_stride: String,
    c_bound: String,
    c_stride: String,
    a_bound2: String,
    a_stride2: String,
    b_bound2: String,
    b_stride2: String,
    c_bound2: String,
    c_stride2: String,
}

impl Names {
    fn from_descriptor(desc: &AcceleratorDescriptor) -> Self {
        let get = |reg: u16| {
            desc.field_by_reg(reg)
                .unwrap_or_else(|| panic!("descriptor lacks a field for config register {reg}"))
                .name
                .clone()
        };
        Self {
            a: get(regmap::A_ADDR),
            b: get(regmap::B_ADDR),
            c: get(regmap::C_ADDR),
            m: get(regmap::M),
            n: get(regmap::N),
            k: get(regmap::K),
            stride_a: get(regmap::STRIDE_A),
            stride_b: get(regmap::STRIDE_B),
            stride_c: get(regmap::STRIDE_C),
            d: desc.field_by_reg(regmap::D_ADDR).map(|f| f.name.clone()),
            stride_d: desc.field_by_reg(regmap::STRIDE_D).map(|f| f.name.clone()),
            flags: get(regmap::FLAGS),
            streamers: desc.field("streamer_A_bound").map(|_| StreamerNames {
                a_bound: "streamer_A_bound".into(),
                a_stride: "streamer_A_stride".into(),
                b_bound: "streamer_B_bound".into(),
                b_stride: "streamer_B_stride".into(),
                c_bound: "streamer_C_bound".into(),
                c_stride: "streamer_C_stride".into(),
                a_bound2: "streamer_A_bound2".into(),
                a_stride2: "streamer_A_stride2".into(),
                b_bound2: "streamer_B_bound2".into(),
                b_stride2: "streamer_B_stride2".into(),
                c_bound2: "streamer_C_bound2".into(),
                c_stride2: "streamer_C_stride2".into(),
            }),
        }
    }
}

/// Emits one setup/launch/await cluster for a tile at the given addresses.
#[allow(clippy::too_many_arguments)]
fn emit_invocation(
    b: &mut FuncBuilder<'_>,
    names: &Names,
    accel: &str,
    spec: &MatmulSpec,
    a: ValueId,
    bb: ValueId,
    c: ValueId,
    flags: ValueId,
) {
    // tile shape and strides are re-materialized per invocation, as a
    // C frontend would
    let tile_m = b.const_index(spec.tile_m);
    let tile_n = b.const_index(spec.tile_n);
    let tile_k = b.const_index(spec.tile_k);
    let stride_a = b.const_index(spec.k);
    let stride_b = b.const_index(spec.n);
    let stride_c = b.const_index(4 * spec.n);
    let mut fields: Vec<(&str, ValueId)> = vec![
        (&names.a, a),
        (&names.b, bb),
        (&names.c, c),
        (&names.m, tile_m),
        (&names.n, tile_n),
        (&names.k, tile_k),
        (&names.stride_a, stride_a),
        (&names.stride_b, stride_b),
        (&names.stride_c, stride_c),
        (&names.flags, flags),
    ];
    // targets with a bias input get its registers written (disabled = 0)
    if let (Some(dn), Some(sdn)) = (&names.d, &names.stride_d) {
        let d = b.const_index(0);
        let stride_d = b.const_index(0);
        fields.push((dn, d));
        fields.push((sdn, stride_d));
    }
    // streamer configuration, derived per invocation as the C runtime does
    // (the accfg flow folds it all; the baseline recomputes every launch)
    if let Some(st) = &names.streamers {
        let eight = b.const_index(8);
        let a_bound = b.divui(tile_k, eight);
        let a_stride = b.muli(stride_a, eight);
        let b_bound = b.divui(tile_n, eight);
        let b_stride = b.muli(stride_b, eight);
        let c_bound = b.divui(tile_m, eight);
        let c_stride = b.muli(stride_c, eight);
        fields.push((&st.a_bound, a_bound));
        fields.push((&st.a_stride, a_stride));
        fields.push((&st.b_bound, b_bound));
        fields.push((&st.b_stride, b_stride));
        fields.push((&st.c_bound, c_bound));
        fields.push((&st.c_stride, c_stride));
        // inner (spatial) dimension of each streamer: 8-wide vectors
        let a_bound2 = b.divui(tile_m, eight);
        let elem_row = b.muli(eight, eight);
        let b_bound2 = b.divui(tile_k, eight);
        let four = four_bytes(b);
        let c_stride2 = b.muli(four, eight);
        fields.push((&st.a_bound2, a_bound2));
        fields.push((&st.a_stride2, eight));
        fields.push((&st.b_bound2, b_bound2));
        fields.push((&st.b_stride2, elem_row));
        fields.push((&st.c_bound2, a_bound2));
        fields.push((&st.c_stride2, c_stride2));
    }
    let state = b.setup(accel, &fields);
    let token = b.launch(accel, state);
    b.await_token(accel, token);
}

/// Computes tile base addresses `(a, b, c)` for tile indices `(i, j, kk)`.
fn tile_addresses(
    b: &mut FuncBuilder<'_>,
    spec: &MatmulSpec,
    bases: (ValueId, ValueId, ValueId),
    i: ValueId,
    j: ValueId,
    kk: ValueId,
) -> (ValueId, ValueId, ValueId) {
    let k_c = b.const_index(spec.k);
    let n_c = b.const_index(spec.n);
    let tile_m_c = b.const_index(spec.tile_m);
    let tile_n_c = b.const_index(spec.tile_n);
    let tile_k_c = b.const_index(spec.tile_k);
    let four = b.const_index(4);

    // a_off = (i·tile_m)·k + kk·tile_k
    let a_row = b.muli(i, tile_m_c);
    let a_row_off = b.muli(a_row, k_c);
    let a_col_off = b.muli(kk, tile_k_c);
    let a_off = b.addi(a_row_off, a_col_off);
    let a = b.addi(bases.0, a_off);

    // b_off = (kk·tile_k)·n + j·tile_n
    let b_row = b.muli(kk, tile_k_c);
    let b_row_off = b.muli(b_row, n_c);
    let b_col_off = b.muli(j, tile_n_c);
    let b_off = b.addi(b_row_off, b_col_off);
    let bv = b.addi(bases.1, b_off);

    // c_off = ((i·tile_m)·n + j·tile_n)·4
    let c_row = b.muli(i, tile_m_c);
    let c_row_off = b.muli(c_row, n_c);
    let c_col_off = b.muli(j, tile_n_c);
    let c_elems = b.addi(c_row_off, c_col_off);
    let c_off = b.muli(c_elems, four);
    let c = b.addi(bases.2, c_off);

    (a, bv, c)
}

fn four_bytes(b: &mut FuncBuilder<'_>) -> ValueId {
    b.const_index(4)
}

/// The base flag word for a spec (ReLU if requested).
fn base_flags(spec: &MatmulSpec) -> i64 {
    if spec.relu {
        accel_flags::RELU
    } else {
        0
    }
}

/// Generates the matmul kernel for `desc` as a function
/// `matmul(A: i64, B: i64, C: i64)`.
///
/// Single-invocation specs produce one straight-line cluster; multi-tile
/// specs produce the conventional nested tiling loops (the natural frontend
/// output, and the shape the paper's Section 6.2 measures). The collapsed
/// single-loop variant is available separately for the loop-structure
/// ablation.
pub fn matmul_ir(desc: &AcceleratorDescriptor, spec: &MatmulSpec) -> Module {
    if spec.invocations() == 1 {
        single_invocation_ir(desc, spec)
    } else {
        tiled_nested_ir(desc, spec)
    }
}

/// One straight-line setup/launch/await cluster covering the whole problem.
pub fn single_invocation_ir(desc: &AcceleratorDescriptor, spec: &MatmulSpec) -> Module {
    assert_eq!(spec.invocations(), 1, "spec must be a single tile");
    let names = Names::from_descriptor(desc);
    let mut m = Module::new();
    let (mut b, args) = FuncBuilder::new_func(&mut m, "matmul", vec![Type::I64; 3]);
    let flags = b.const_index(base_flags(spec));
    emit_invocation(
        &mut b, &names, &desc.name, spec, args[0], args[1], args[2], flags,
    );
    b.ret(vec![]);
    m
}

/// The collapsed tiling loop: `for t in 0..ti·tj·tk` with index recovery.
pub fn tiled_collapsed_ir(desc: &AcceleratorDescriptor, spec: &MatmulSpec) -> Module {
    let names = Names::from_descriptor(desc);
    let (ti, tj, tk) = spec.tiles();
    let spec = *spec;
    let mut m = Module::new();
    let (mut b, args) = FuncBuilder::new_func(&mut m, "matmul", vec![Type::I64; 3]);
    let lb = b.const_index(0);
    let ub = b.const_index(ti * tj * tk);
    let one = b.const_index(1);
    let accel = desc.name.clone();
    b.build_for(lb, ub, one, vec![], |b, t, _| {
        // recover (i, j, kk) from the linear index; grid dims of 1 are
        // resolved at generation time (a C frontend would not divide by 1)
        let (kk, rest) = if tk == 1 {
            (b.const_index(0), t)
        } else {
            let tk_c = b.const_index(tk);
            (b.remui(t, tk_c), b.divui(t, tk_c))
        };
        let (j, i) = if tj == 1 {
            (b.const_index(0), rest)
        } else {
            let tj_c = b.const_index(tj);
            (b.remui(rest, tj_c), b.divui(rest, tj_c))
        };
        let (a, bb, c) = tile_addresses(b, &spec, (args[0], args[1], args[2]), i, j, kk);
        let flags = if spec.accumulates() {
            // accumulate onto C for every reduction step after the first
            let zero = b.const_index(0);
            let first = b.cmpi(CmpPredicate::Eq, kk, zero);
            let base = b.const_index(base_flags(&spec));
            let acc = b.const_index(base_flags(&spec) | accel_flags::ACCUMULATE);
            b.select(first, base, acc)
        } else {
            b.const_index(base_flags(&spec))
        };
        emit_invocation(b, &names, &accel, &spec, a, bb, c, flags);
        vec![]
    });
    b.ret(vec![]);
    m
}

/// The conventional nested tiling loops (i, then j, then kk innermost).
///
/// Grid dimensions of 1 do not get a loop (a frontend would not emit a
/// one-trip loop), so e.g. the OpenGeMM 8-by-k-by-8 tiling produces a
/// doubly-nested i/j loop with the full reduction inside each invocation.
pub fn tiled_nested_ir(desc: &AcceleratorDescriptor, spec: &MatmulSpec) -> Module {
    let names = Names::from_descriptor(desc);
    let (ti, tj, tk) = spec.tiles();
    let spec = *spec;
    let mut m = Module::new();
    let (mut b, args) = FuncBuilder::new_func(&mut m, "matmul", vec![Type::I64; 3]);
    let lb = b.const_index(0);
    let one = b.const_index(1);
    let accel = desc.name.clone();

    // innermost: one invocation at tile indices (i, j, kk)
    let body = |b: &mut FuncBuilder<'_>, i: ValueId, j: ValueId, kk: ValueId| {
        let (a, bb, c) = tile_addresses(b, &spec, (args[0], args[1], args[2]), i, j, kk);
        let flags = if spec.accumulates() {
            let zero = b.const_index(0);
            let first = b.cmpi(CmpPredicate::Eq, kk, zero);
            let base = b.const_index(base_flags(&spec));
            let acc = b.const_index(base_flags(&spec) | accel_flags::ACCUMULATE);
            b.select(first, base, acc)
        } else {
            b.const_index(base_flags(&spec))
        };
        emit_invocation(b, &names, &accel, &spec, a, bb, c, flags);
    };
    let k_level = |b: &mut FuncBuilder<'_>, i: ValueId, j: ValueId| {
        if tk == 1 {
            let kk = b.const_index(0);
            body(b, i, j, kk);
        } else {
            let ub_k = b.const_index(tk);
            b.build_for(lb, ub_k, one, vec![], |b, kk, _| {
                body(b, i, j, kk);
                vec![]
            });
        }
    };
    let j_level = |b: &mut FuncBuilder<'_>, i: ValueId| {
        if tj == 1 {
            let j = b.const_index(0);
            k_level(b, i, j);
        } else {
            let ub_j = b.const_index(tj);
            b.build_for(lb, ub_j, one, vec![], |b, j, _| {
                k_level(b, i, j);
                vec![]
            });
        }
    };
    if ti == 1 {
        let i = b.const_index(0);
        j_level(&mut b, i);
    } else {
        let ub_i = b.const_index(ti);
        b.build_for(lb, ub_i, one, vec![], |b, i, _| {
            j_level(b, i);
            vec![]
        });
    }
    b.ret(vec![]);
    m
}

/// The Gemmini weight-stationary flow (Section 6.1): one
/// `gemmini_loop_ws`-style invocation per 64-wide column strip, with the
/// full `gemmini.h` software sequence emitted per invocation — scratchpad
/// address derivation, hardware-loop bound/padding bit-packing (Listing 1),
/// and the per-mover configuration words.
///
/// In the C baseline all of this is pinned behind volatile inline assembly
/// and re-executed per invocation; the accfg pipeline constant-folds the
/// packing, hoists the invariant fields, and deduplicates repeated writes —
/// the two effects behind Figure 10's uplift.
pub fn gemmini_ws_ir(desc: &AcceleratorDescriptor, spec: &MatmulSpec) -> Module {
    let names = Names::from_descriptor(desc);
    let name = |reg: u16| {
        desc.field_by_reg(reg)
            .expect("gemmini descriptor has auxiliary fields")
            .name
            .clone()
    };
    let aux = GemminiAuxNames {
        d: name(regmap::D_ADDR),
        stride_d: name(regmap::STRIDE_D),
        spad_a: name(regmap::SPAD_A),
        spad_b: name(regmap::SPAD_B),
        spad_c: name(regmap::SPAD_C),
        spad_d: name(regmap::SPAD_D),
        loop_sizes: name(regmap::LOOP_SIZES),
        loop_pads: name(regmap::LOOP_PADS),
        config_ex: name(regmap::CONFIG_EX),
        config_ld_a: name(regmap::CONFIG_LD_A),
        config_ld_b: name(regmap::CONFIG_LD_B),
        config_ld_d: name(regmap::CONFIG_LD_D),
        config_st: name(regmap::CONFIG_ST),
        mvin_scale: name(regmap::MVIN_SCALE),
    };
    let (ti, tj, tk) = spec.tiles();
    let spec = *spec;
    let accel = desc.name.clone();
    let mut m = Module::new();
    let (mut b, args) = FuncBuilder::new_func(&mut m, "matmul", vec![Type::I64; 3]);
    if ti * tj * tk == 1 {
        let zero = b.const_index(0);
        let flags = b.const_index(base_flags(&spec));
        emit_gemmini_invocation(
            &mut b, &names, &aux, &accel, &spec, args[0], args[1], args[2], flags, zero,
        );
        b.ret(vec![]);
        return m;
    }
    let lb = b.const_index(0);
    let ub = b.const_index(ti * tj * tk);
    let one = b.const_index(1);
    b.build_for(lb, ub, one, vec![], |b, t, _| {
        // reduction-innermost linearization (kk fastest)
        let (kk, rest) = if tk == 1 {
            (b.const_index(0), t)
        } else {
            let tk_c = b.const_index(tk);
            (b.remui(t, tk_c), b.divui(t, tk_c))
        };
        let (j, i) = if tj == 1 {
            (b.const_index(0), rest)
        } else {
            let tj_c = b.const_index(tj);
            (b.remui(rest, tj_c), b.divui(rest, tj_c))
        };
        let (a, bb, c) = tile_addresses(b, &spec, (args[0], args[1], args[2]), i, j, kk);
        let flags = if spec.accumulates() {
            // output-stationary-style flow: accumulate after the first
            // reduction step
            let zero = b.const_index(0);
            let first = b.cmpi(CmpPredicate::Eq, kk, zero);
            let base = b.const_index(base_flags(&spec));
            let acc = b.const_index(base_flags(&spec) | accel_flags::ACCUMULATE);
            b.select(first, base, acc)
        } else {
            b.const_index(base_flags(&spec))
        };
        emit_gemmini_invocation(b, &names, &aux, &accel, &spec, a, bb, c, flags, kk);
        vec![]
    });
    b.ret(vec![]);
    m
}

struct GemminiAuxNames {
    d: String,
    stride_d: String,
    spad_a: String,
    spad_b: String,
    spad_c: String,
    spad_d: String,
    loop_sizes: String,
    loop_pads: String,
    config_ex: String,
    config_ld_a: String,
    config_ld_b: String,
    config_ld_d: String,
    config_st: String,
    mvin_scale: String,
}

/// One full `gemmini.h`-style invocation: derived parameters, packing, and
/// a 24-field setup.
#[allow(clippy::too_many_arguments)]
fn emit_gemmini_invocation(
    b: &mut FuncBuilder<'_>,
    names: &Names,
    aux: &GemminiAuxNames,
    accel: &str,
    spec: &MatmulSpec,
    a: ValueId,
    bb: ValueId,
    c: ValueId,
    flags: ValueId,
    _kk: ValueId,
) {
    // plain tile descriptor values
    let tile_i = b.const_index(spec.tile_m);
    let tile_j = b.const_index(spec.tile_n);
    let tile_k = b.const_index(spec.tile_k);
    let stride_a = b.const_index(spec.k);
    let stride_b = b.const_index(spec.n);
    let stride_c = b.const_index(4 * spec.n);
    let stride_d = b.const_index(0);
    let d_addr = b.const_index(0);
    let act = b.const_index(i64::from(spec.relu));

    // scratchpad-local addresses with bank interleaving:
    // ((dram_addr >> 4) & 0x3FFF) | (((dram_addr >> 10) & 7) << 14)
    let four = b.const_index(4);
    let ten = b.const_index(10);
    let fourteen = b.const_index(14);
    let mask = b.const_index(0x3FFF);
    let bank_mask = b.const_index(7);
    let spad = |b: &mut FuncBuilder<'_>, addr: ValueId| {
        let row_sh = b.shrui(addr, four);
        let row = b.andi(row_sh, mask);
        let bank_sh = b.shrui(addr, ten);
        let bank = b.andi(bank_sh, bank_mask);
        let bank_pos = b.shli(bank, fourteen);
        b.ori(row, bank_pos)
    };
    let spad_a = spad(b, a);
    let spad_b = spad(b, bb);
    let spad_c = spad(b, c);
    let spad_d = b.const_index(0);

    // systolic-array padding: pad_x = (16 - x % 16) % 16 (Listing 1 keeps
    // this arithmetic alive in the baseline; accfg folds it away)
    let sixteen = b.const_index(16);
    let pad = |b: &mut FuncBuilder<'_>, v: ValueId| {
        let rem = b.remui(v, sixteen);
        let diff = b.subi(sixteen, rem);
        b.remui(diff, sixteen)
    };
    let pad_i = pad(b, tile_i);
    let pad_j = pad(b, tile_j);
    let pad_k = pad(b, tile_k);

    // packed hardware-loop bounds: x | y<<16 | z<<32
    let s16 = b.const_index(16);
    let s32 = b.const_index(32);
    let pack3 = |b: &mut FuncBuilder<'_>, x: ValueId, y: ValueId, z: ValueId| {
        let hi = b.shli(z, s32);
        let mid = b.shli(y, s16);
        let lo = b.ori(x, mid);
        b.ori(lo, hi)
    };
    let loop_sizes = pack3(b, tile_i, tile_j, tile_k);
    let loop_pads = pack3(b, pad_i, pad_j, pad_k);

    // per-mover configuration words
    let dataflow = b.const_index(1); // weight-stationary
    let three = b.const_index(3);
    let act_sh = b.shli(act, three);
    let config_ex = b.ori(dataflow, act_sh);
    let scale = b.const_index(1);
    let pack_ld = |b: &mut FuncBuilder<'_>, stride: ValueId| {
        let hi = b.shli(stride, s16);
        b.ori(hi, scale)
    };
    let config_ld_a = pack_ld(b, stride_a);
    let config_ld_b = pack_ld(b, stride_b);
    let config_ld_d = pack_ld(b, stride_d);
    let st_hi = b.shli(stride_c, s16);
    let config_st = b.ori(st_hi, act);

    let fields: Vec<(String, ValueId)> = vec![
        (names.a.clone(), a),
        (names.b.clone(), bb),
        (names.c.clone(), c),
        (aux.d.clone(), d_addr),
        (names.m.clone(), tile_i),
        (names.n.clone(), tile_j),
        (names.k.clone(), tile_k),
        (names.stride_a.clone(), stride_a),
        (names.stride_b.clone(), stride_b),
        (names.stride_c.clone(), stride_c),
        (aux.stride_d.clone(), stride_d),
        (names.flags.clone(), flags),
        (aux.spad_a.clone(), spad_a),
        (aux.spad_b.clone(), spad_b),
        (aux.spad_c.clone(), spad_c),
        (aux.spad_d.clone(), spad_d),
        (aux.loop_sizes.clone(), loop_sizes),
        (aux.loop_pads.clone(), loop_pads),
        (aux.config_ex.clone(), config_ex),
        (aux.config_ld_a.clone(), config_ld_a),
        (aux.config_ld_b.clone(), config_ld_b),
        (aux.config_ld_d.clone(), config_ld_d),
        (aux.config_st.clone(), config_st),
        (aux.mvin_scale.clone(), scale),
    ];
    let refs: Vec<(&str, ValueId)> = fields.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    let state = b.setup(accel, &refs);
    let token = b.launch(accel, state);
    b.await_token(accel, token);
}

/// A sequence of independent layers (an MLP-style inference graph): each
/// layer is one matmul with its own memory region, dispatched back-to-back
/// in straight-line code — the scenario where block-level overlap hides one
/// layer's configuration behind the previous layer's execution.
///
/// Returns a function `layers()` with the addresses baked in as constants.
pub fn layer_sequence_ir(
    desc: &AcceleratorDescriptor,
    layers: &[(MatmulSpec, MatmulLayout)],
) -> Module {
    let names = Names::from_descriptor(desc);
    let mut m = Module::new();
    let (mut b, _) = FuncBuilder::new_func(&mut m, "layers", vec![]);
    for (spec, layout) in layers {
        assert_eq!(
            spec.invocations(),
            1,
            "layer_sequence_ir expects single-invocation layers"
        );
        let a = b.const_int(layout.a_addr, Type::I64);
        let bb = b.const_int(layout.b_addr, Type::I64);
        let c = b.const_int(layout.c_addr, Type::I64);
        let flags = b.const_index(base_flags(spec));
        emit_invocation(&mut b, &names, &desc.name, spec, a, bb, c, flags);
    }
    b.ret(vec![]);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{check_result, fill_inputs};
    use accfg::pipeline::{pipeline, OptLevel};
    use accfg::AccelFilter;
    use accfg_sim::{AccelSim, Machine};
    use accfg_targets::compile;

    /// Full flow: generate → optimize → lower → simulate → check against
    /// the reference matmul.
    fn run_and_check(
        desc: &AcceleratorDescriptor,
        spec: &MatmulSpec,
        level: OptLevel,
        module: Module,
    ) -> accfg_sim::Counters {
        let mut module = module;
        let filter = if desc.supports_overlap() {
            AccelFilter::All
        } else {
            AccelFilter::Only(vec![])
        };
        pipeline(level, filter).run(&mut module).expect("pipeline");
        let layout = MatmulLayout::at(0x1000, spec);
        let prog = compile(
            &module,
            "matmul",
            desc,
            &[layout.a_addr, layout.b_addr, layout.c_addr],
        )
        .expect("lowering");
        let mut machine = Machine::new(
            desc.host.clone(),
            AccelSim::new(desc.accel.clone()),
            layout.end as usize,
        );
        fill_inputs(&mut machine.mem, spec, &layout, 0xC0FFEE).unwrap();
        let counters = machine.run(&prog, 100_000_000).expect("simulation");
        check_result(&machine.mem, spec, &layout).expect("functional result");
        counters
    }

    #[test]
    fn opengemm_all_levels_are_functionally_correct() {
        let desc = AcceleratorDescriptor::opengemm();
        let spec = MatmulSpec::opengemm_paper(32).unwrap();
        for level in OptLevel::ALL_LEVELS {
            let m = matmul_ir(&desc, &spec);
            run_and_check(&desc, &spec, level, m);
        }
    }

    #[test]
    fn gemmini_all_levels_are_functionally_correct() {
        let desc = AcceleratorDescriptor::gemmini();
        for size in [32, 128] {
            let spec = MatmulSpec::gemmini_paper(size).unwrap();
            for level in [OptLevel::Base, OptLevel::Dedup] {
                let m = matmul_ir(&desc, &spec);
                run_and_check(&desc, &spec, level, m);
            }
        }
    }

    #[test]
    fn accumulating_tiles_compute_correctly() {
        // tile_k < k exercises the ACCUMULATE flag and the select-based
        // flag computation
        let desc = AcceleratorDescriptor::opengemm();
        let spec = MatmulSpec::new((32, 32, 32), (8, 8, 8)).unwrap();
        for level in OptLevel::ALL_LEVELS {
            let m = matmul_ir(&desc, &spec);
            run_and_check(&desc, &spec, level, m);
        }
    }

    #[test]
    fn relu_workload_clamps() {
        let desc = AcceleratorDescriptor::opengemm();
        let spec = MatmulSpec::new((16, 16, 16), (8, 8, 16))
            .unwrap()
            .with_relu()
            .unwrap();
        let m = matmul_ir(&desc, &spec);
        run_and_check(&desc, &spec, OptLevel::All, m);
    }

    #[test]
    fn nested_and_collapsed_agree() {
        let desc = AcceleratorDescriptor::opengemm();
        let spec = MatmulSpec::new((16, 16, 16), (8, 8, 8)).unwrap();
        let collapsed = tiled_collapsed_ir(&desc, &spec);
        let nested = tiled_nested_ir(&desc, &spec);
        let c1 = run_and_check(&desc, &spec, OptLevel::Base, collapsed);
        let c2 = run_and_check(&desc, &spec, OptLevel::Base, nested);
        assert_eq!(c1.launches, c2.launches);
    }

    #[test]
    fn optimization_reduces_cycles_monotonically_on_opengemm() {
        let desc = AcceleratorDescriptor::opengemm();
        let spec = MatmulSpec::opengemm_paper(64).unwrap();
        let cycles: Vec<u64> = [OptLevel::Base, OptLevel::Dedup, OptLevel::All]
            .iter()
            .map(|&level| {
                let m = matmul_ir(&desc, &spec);
                run_and_check(&desc, &spec, level, m).cycles
            })
            .collect();
        assert!(
            cycles[1] < cycles[0],
            "dedup {} !< base {}",
            cycles[1],
            cycles[0]
        );
        assert!(
            cycles[2] < cycles[1],
            "all {} !< dedup {}",
            cycles[2],
            cycles[1]
        );
    }

    #[test]
    fn gemmini_ws_flow_is_functionally_correct() {
        let desc = AcceleratorDescriptor::gemmini();
        for size in [32, 128] {
            let spec = MatmulSpec::gemmini_paper(size).unwrap();
            for level in [OptLevel::Base, OptLevel::Dedup] {
                let m = gemmini_ws_ir(&desc, &spec);
                run_and_check(&desc, &spec, level, m);
            }
        }
    }

    #[test]
    fn gemmini_dedup_cuts_host_cycles() {
        let desc = AcceleratorDescriptor::gemmini();
        let spec = MatmulSpec::gemmini_paper(128).unwrap();
        let base = run_and_check(&desc, &spec, OptLevel::Base, gemmini_ws_ir(&desc, &spec));
        let dedup = run_and_check(&desc, &spec, OptLevel::Dedup, gemmini_ws_ir(&desc, &spec));
        assert!(
            dedup.host_cycles < base.host_cycles,
            "{} !< {}",
            dedup.host_cycles,
            base.host_cycles
        );
        assert!(dedup.config_bytes < base.config_bytes);
    }

    #[test]
    fn layer_sequence_runs_and_is_correct() {
        let desc = AcceleratorDescriptor::opengemm();
        let spec1 = MatmulSpec::new((8, 8, 8), (8, 8, 8)).unwrap();
        let spec2 = MatmulSpec::new((8, 8, 8), (8, 8, 8)).unwrap();
        let l1 = MatmulLayout::at(0x1000, &spec1);
        let l2 = MatmulLayout::at(l1.end, &spec2);
        let mut m = layer_sequence_ir(&desc, &[(spec1, l1), (spec2, l2)]);
        pipeline(OptLevel::All, AccelFilter::All)
            .run(&mut m)
            .unwrap();
        let prog = compile(&m, "layers", &desc, &[]).unwrap();
        let mut machine = Machine::new(
            desc.host.clone(),
            AccelSim::new(desc.accel.clone()),
            l2.end as usize,
        );
        fill_inputs(&mut machine.mem, &spec1, &l1, 1).unwrap();
        fill_inputs(&mut machine.mem, &spec2, &l2, 2).unwrap();
        let counters = machine.run(&prog, 1_000_000).unwrap();
        assert_eq!(counters.launches, 2);
        check_result(&machine.mem, &spec1, &l1).unwrap();
        check_result(&machine.mem, &spec2, &l2).unwrap();
    }
}
