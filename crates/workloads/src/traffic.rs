//! Deterministic open-loop request-stream generation for the serving
//! runtime.
//!
//! The paper eliminates redundant configuration *within* one compiled
//! program; a serving system sees the same redundancy *across requests* —
//! consecutive requests with similar shapes reprogram identical registers
//! on every dispatch. The generators here produce the request streams that
//! expose that: an open-loop arrival process (arrivals do not wait for
//! completions) over a weighted mix of matmul shapes per accelerator,
//! fully determined by a seed so every run, test, and CI job sees the
//! identical stream.

use crate::data::SplitMix;
use crate::spec::{MatmulSpec, SpecError};

/// One dispatchable unit of work in a request stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficRequest {
    /// Stream-unique id, increasing in arrival order.
    pub id: u64,
    /// Target accelerator (an [`AcceleratorDescriptor`] name).
    ///
    /// [`AcceleratorDescriptor`]: accfg_targets::AcceleratorDescriptor
    pub accelerator: String,
    /// The matmul to execute.
    pub spec: MatmulSpec,
    /// Simulated arrival cycle (open-loop: independent of service times).
    pub arrival: u64,
    /// Seed for this request's input data.
    pub seed: u64,
}

/// One shape class in the traffic mix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficClass {
    /// Target accelerator name.
    pub accelerator: String,
    /// The shape requests of this class carry.
    pub spec: MatmulSpec,
    /// Relative draw weight (classes with weight 0 never occur).
    pub weight: u32,
}

/// Parameters of an open-loop stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficConfig {
    /// The shape classes and their weights.
    pub classes: Vec<TrafficClass>,
    /// Number of requests to generate.
    pub requests: usize,
    /// Mean inter-arrival gap in cycles (gaps are uniform in
    /// `[0, 2·mean_gap]`, so the mean is exact).
    pub mean_gap: u64,
    /// Stream seed.
    pub seed: u64,
}

impl TrafficConfig {
    /// Generates the stream, sorted by arrival (ids follow arrival order).
    ///
    /// # Errors
    /// Fails if no class has a positive weight.
    pub fn open_loop_stream(&self) -> Result<Vec<TrafficRequest>, SpecError> {
        let total_weight: u64 = self.classes.iter().map(|c| u64::from(c.weight)).sum();
        if total_weight == 0 {
            return Err(SpecError {
                message: "traffic mix needs at least one class with positive weight".into(),
            });
        }
        let mut rng = SplitMix::new(self.seed);
        let mut arrival = 0u64;
        let mut out = Vec::with_capacity(self.requests);
        for id in 0..self.requests as u64 {
            arrival += rng.next_u64() % (2 * self.mean_gap + 1);
            let mut pick = rng.next_u64() % total_weight;
            let class = self
                .classes
                .iter()
                .find(|c| {
                    let w = u64::from(c.weight);
                    if pick < w {
                        true
                    } else {
                        pick -= w;
                        false
                    }
                })
                .expect("weighted pick is in range");
            out.push(TrafficRequest {
                id,
                accelerator: class.accelerator.clone(),
                spec: class.spec,
                arrival,
                seed: rng.next_u64(),
            });
        }
        Ok(out)
    }
}

/// The canonical mixed-shape serving mix used by `serve_bench` and the
/// integration tests: three shapes per platform, biased toward the small
/// ones (inference-style traffic).
///
/// # Panics
/// Never — the shapes are statically valid.
pub fn mixed_serving_classes() -> Vec<TrafficClass> {
    let gemmini = |size: i64, weight: u32| TrafficClass {
        accelerator: "gemmini".into(),
        spec: MatmulSpec::gemmini_paper(size).expect("valid gemmini size"),
        weight,
    };
    let opengemm = |size: i64, weight: u32| TrafficClass {
        accelerator: "opengemm".into(),
        spec: MatmulSpec::opengemm_paper(size).expect("valid opengemm size"),
        weight,
    };
    vec![
        gemmini(16, 4),
        gemmini(32, 2),
        gemmini(64, 1),
        opengemm(16, 4),
        opengemm(24, 2),
        opengemm(32, 1),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(requests: usize, seed: u64) -> TrafficConfig {
        TrafficConfig {
            classes: mixed_serving_classes(),
            requests,
            mean_gap: 100,
            seed,
        }
    }

    #[test]
    fn stream_is_deterministic() {
        let a = config(500, 7).open_loop_stream().unwrap();
        let b = config(500, 7).open_loop_stream().unwrap();
        assert_eq!(a, b);
        let c = config(500, 8).open_loop_stream().unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn arrivals_are_sorted_and_ids_sequential() {
        let stream = config(1000, 42).open_loop_stream().unwrap();
        assert_eq!(stream.len(), 1000);
        for (i, pair) in stream.windows(2).enumerate() {
            assert!(pair[0].arrival <= pair[1].arrival, "at {i}");
        }
        for (i, r) in stream.iter().enumerate() {
            assert_eq!(r.id, i as u64);
        }
    }

    #[test]
    fn mix_respects_weights_roughly() {
        let stream = config(6000, 1).open_loop_stream().unwrap();
        let count = |accel: &str| stream.iter().filter(|r| r.accelerator == accel).count();
        let gemmini = count("gemmini");
        let opengemm = count("opengemm");
        // equal total weight per platform: each side gets roughly half
        assert!((2400..=3600).contains(&gemmini), "{gemmini}");
        assert_eq!(gemmini + opengemm, 6000);
    }

    #[test]
    fn mean_gap_is_roughly_honoured() {
        let stream = config(4000, 3).open_loop_stream().unwrap();
        let span = stream.last().unwrap().arrival;
        let mean = span as f64 / 4000.0;
        assert!((80.0..120.0).contains(&mean), "{mean}");
    }

    #[test]
    fn zero_weight_mix_is_rejected() {
        let mut cfg = config(10, 0);
        for c in &mut cfg.classes {
            c.weight = 0;
        }
        assert!(cfg.open_loop_stream().is_err());
    }
}
