//! Deterministic open-loop request-stream generation for the serving
//! runtime.
//!
//! The paper eliminates redundant configuration *within* one compiled
//! program; a serving system sees the same redundancy *across requests* —
//! consecutive requests with similar shapes reprogram identical registers
//! on every dispatch. The generators here produce the request streams that
//! expose that, over a weighted mix of matmul shapes per accelerator,
//! fully determined by a seed so every run, test, and CI job sees the
//! identical stream:
//!
//! - [`TrafficConfig::open_loop_stream`] — open-loop arrivals (uniform
//!   inter-arrival gaps, independent of service times);
//! - [`BurstyConfig::stream`] — an on/off arrival process: tight bursts
//!   separated by long idle gaps, the pattern that stresses queue-depth
//!   scheduling hardest;
//! - [`ClosedLoopConfig::stream`] — a fixed population of clients, each
//!   issuing its next request one estimated service time plus a think gap
//!   after the previous, the arrival process of an RPC fan-in tier.
//!
//! Two canonical mixes feed the serving benchmark:
//! [`mixed_serving_classes`] (few shapes, inference-style skew) and
//! [`shape_heavy_classes`] (shapes ≫ workers, where affinity's routing
//! term dominates scheduling).

use crate::data::SplitMix;
use crate::spec::{MatmulSpec, SpecError};

/// One dispatchable unit of work in a request stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficRequest {
    /// Stream-unique id, increasing in arrival order.
    pub id: u64,
    /// Target accelerator (an [`AcceleratorDescriptor`] name).
    ///
    /// [`AcceleratorDescriptor`]: accfg_targets::AcceleratorDescriptor
    pub accelerator: String,
    /// The matmul to execute.
    pub spec: MatmulSpec,
    /// Simulated arrival cycle (open-loop: independent of service times).
    pub arrival: u64,
    /// Seed for this request's input data.
    pub seed: u64,
}

/// One shape class in the traffic mix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficClass {
    /// Target accelerator name.
    pub accelerator: String,
    /// The shape requests of this class carry.
    pub spec: MatmulSpec,
    /// Relative draw weight (classes with weight 0 never occur).
    pub weight: u32,
}

/// Parameters of an open-loop stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficConfig {
    /// The shape classes and their weights.
    pub classes: Vec<TrafficClass>,
    /// Number of requests to generate.
    pub requests: usize,
    /// Mean inter-arrival gap in cycles (gaps are uniform in
    /// `[0, 2·mean_gap]`, so the mean is exact).
    pub mean_gap: u64,
    /// Stream seed.
    pub seed: u64,
}

/// Validates a mix and returns its total weight.
fn total_weight(classes: &[TrafficClass]) -> Result<u64, SpecError> {
    let total: u64 = classes.iter().map(|c| u64::from(c.weight)).sum();
    if total == 0 {
        return Err(SpecError {
            message: "traffic mix needs at least one class with positive weight".into(),
        });
    }
    Ok(total)
}

/// Draws one class index by weight.
fn pick_class_index(classes: &[TrafficClass], total: u64, rng: &mut SplitMix) -> usize {
    let mut pick = rng.next_u64() % total;
    classes
        .iter()
        .position(|c| {
            let w = u64::from(c.weight);
            if pick < w {
                true
            } else {
                pick -= w;
                false
            }
        })
        .expect("weighted pick is in range")
}

/// Draws one class by weight.
fn pick_class<'a>(classes: &'a [TrafficClass], total: u64, rng: &mut SplitMix) -> &'a TrafficClass {
    &classes[pick_class_index(classes, total, rng)]
}

impl TrafficConfig {
    /// Generates the stream, sorted by arrival (ids follow arrival order).
    ///
    /// # Errors
    /// Fails if no class has a positive weight.
    pub fn open_loop_stream(&self) -> Result<Vec<TrafficRequest>, SpecError> {
        let total = total_weight(&self.classes)?;
        let mut rng = SplitMix::new(self.seed);
        let mut arrival = 0u64;
        let mut out = Vec::with_capacity(self.requests);
        for id in 0..self.requests as u64 {
            arrival += rng.next_u64() % (2 * self.mean_gap + 1);
            let class = pick_class(&self.classes, total, &mut rng);
            out.push(TrafficRequest {
                id,
                accelerator: class.accelerator.clone(),
                spec: class.spec,
                arrival,
                seed: rng.next_u64(),
            });
        }
        Ok(out)
    }
}

/// Parameters of a bursty (on/off) arrival process: requests arrive in
/// tight bursts separated by long idle gaps — the diurnal / retry-storm
/// shape that builds the deepest queues for a given mean rate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BurstyConfig {
    /// The shape classes and their weights.
    pub classes: Vec<TrafficClass>,
    /// Number of requests to generate.
    pub requests: usize,
    /// Mean requests per ON burst (burst lengths are uniform in
    /// `[1, 2·burst_len]`).
    pub burst_len: usize,
    /// Mean inter-arrival gap within a burst, in cycles (uniform in
    /// `[0, 2·burst_gap]`).
    pub burst_gap: u64,
    /// Mean OFF gap between bursts, in cycles (uniform in
    /// `[0, 2·idle_gap]`, added on top of one within-burst gap).
    pub idle_gap: u64,
    /// Stream seed.
    pub seed: u64,
}

impl BurstyConfig {
    /// Generates the stream, sorted by arrival (ids follow arrival order).
    ///
    /// # Errors
    /// Fails if no class has a positive weight or `burst_len` is zero.
    pub fn stream(&self) -> Result<Vec<TrafficRequest>, SpecError> {
        let total = total_weight(&self.classes)?;
        if self.burst_len == 0 {
            return Err(SpecError {
                message: "bursty traffic needs burst_len >= 1".into(),
            });
        }
        let mut rng = SplitMix::new(self.seed);
        let mut arrival = 0u64;
        let mut out = Vec::with_capacity(self.requests);
        let mut burst_left = 0usize;
        for id in 0..self.requests as u64 {
            if burst_left == 0 {
                // a fresh burst: pay the OFF gap, then resample its length
                arrival += rng.next_u64() % (2 * self.idle_gap + 1);
                burst_left = 1 + (rng.next_u64() % (2 * self.burst_len as u64)) as usize;
            }
            arrival += rng.next_u64() % (2 * self.burst_gap + 1);
            burst_left -= 1;
            let class = pick_class(&self.classes, total, &mut rng);
            out.push(TrafficRequest {
                id,
                accelerator: class.accelerator.clone(),
                spec: class.spec,
                arrival,
                seed: rng.next_u64(),
            });
        }
        Ok(out)
    }
}

/// Parameters of a closed-loop arrival process: a fixed population of
/// `clients`, each issuing its next request one (estimated) service time
/// plus a think gap after issuing the previous one. Arrival rate is
/// self-limiting — load cannot outrun the population — which is the
/// regime an RPC fan-in tier serves.
///
/// The feedback loop is driven by an estimated service time rather than
/// live completions so the stream stays a pure, pre-computable function
/// of its inputs (the serving runtime replays latencies deterministically
/// either way). [`ClosedLoopConfig::stream`] uses the single static
/// `service_estimate` for every class;
/// [`ClosedLoopConfig::stream_with_service_times`] takes *per-class*
/// service times — typically measured from a calibration serve of the
/// same mix (`accfg_runtime::measured_class_service_times`) — so the
/// feedback reflects that heavy shapes hold their client longer, which is
/// what makes the overload regime faithful.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClosedLoopConfig {
    /// The shape classes and their weights.
    pub classes: Vec<TrafficClass>,
    /// Number of requests to generate.
    pub requests: usize,
    /// Concurrent client population.
    pub clients: usize,
    /// Mean client think time between requests, in cycles (uniform in
    /// `[0, 2·think_time]`).
    pub think_time: u64,
    /// Estimated per-request service time, in cycles, driving the
    /// closed-loop feedback.
    pub service_estimate: u64,
    /// Stream seed.
    pub seed: u64,
}

impl ClosedLoopConfig {
    /// Generates the stream with the uniform static `service_estimate`
    /// driving every client's feedback, sorted by arrival (ids follow
    /// arrival order, ties broken by client index).
    ///
    /// # Errors
    /// Fails if no class has a positive weight or `clients` is zero.
    pub fn stream(&self) -> Result<Vec<TrafficRequest>, SpecError> {
        self.stream_with_service_times(&vec![self.service_estimate; self.classes.len()])
    }

    /// Generates the stream with *per-class* service times driving the
    /// feedback: after issuing a request of class `i`, the client's next
    /// issue waits `per_class[i]` cycles (plus its think gap) instead of
    /// the uniform `service_estimate`. Feeding back the *measured* mean
    /// service time of each class — the numbers the serving runtime's
    /// cost refiner already tracks, exposed as
    /// `accfg_runtime::measured_class_service_times` — keeps the stream a
    /// deterministic pure function of its inputs while making the
    /// self-limiting feedback faithful to what each shape actually costs.
    ///
    /// # Errors
    /// Fails if no class has a positive weight, `clients` is zero, or
    /// `per_class` is not one service time per class.
    pub fn stream_with_service_times(
        &self,
        per_class: &[u64],
    ) -> Result<Vec<TrafficRequest>, SpecError> {
        let total = total_weight(&self.classes)?;
        if self.clients == 0 {
            return Err(SpecError {
                message: "closed-loop traffic needs at least one client".into(),
            });
        }
        if per_class.len() != self.classes.len() {
            return Err(SpecError {
                message: format!(
                    "closed-loop feedback needs one service time per class ({} classes, {} times)",
                    self.classes.len(),
                    per_class.len()
                ),
            });
        }
        let mut rng = SplitMix::new(self.seed);
        // stagger the population's first issues like think times
        let mut next_issue: Vec<u64> = (0..self.clients)
            .map(|_| rng.next_u64() % (2 * self.think_time + 1))
            .collect();
        let mut issued: Vec<TrafficRequest> = Vec::with_capacity(self.requests);
        for _ in 0..self.requests {
            // the next client to act is the one with the earliest issue
            // time (ties by index) — a deterministic event loop
            let client = (0..self.clients)
                .min_by_key(|&c| (next_issue[c], c))
                .expect("at least one client");
            let arrival = next_issue[client];
            let class_idx = pick_class_index(&self.classes, total, &mut rng);
            let class = &self.classes[class_idx];
            issued.push(TrafficRequest {
                id: 0, // assigned after the arrival sort
                accelerator: class.accelerator.clone(),
                spec: class.spec,
                arrival,
                seed: rng.next_u64(),
            });
            let think = rng.next_u64() % (2 * self.think_time + 1);
            next_issue[client] = arrival + per_class[class_idx] + think;
        }
        // the event loop issues in nondecreasing time; the stable sort
        // keeps its tie order
        issued.sort_by_key(|r| r.arrival);
        for (id, request) in issued.iter_mut().enumerate() {
            request.id = id as u64;
        }
        Ok(issued)
    }
}

/// The canonical mixed-shape serving mix used by `serve_bench` and the
/// integration tests: three shapes per platform, biased toward the small
/// ones (inference-style traffic).
///
/// # Panics
/// Never — the shapes are statically valid.
pub fn mixed_serving_classes() -> Vec<TrafficClass> {
    let gemmini = |size: i64, weight: u32| TrafficClass {
        accelerator: "gemmini".into(),
        spec: MatmulSpec::gemmini_paper(size).expect("valid gemmini size"),
        weight,
    };
    let opengemm = |size: i64, weight: u32| TrafficClass {
        accelerator: "opengemm".into(),
        spec: MatmulSpec::opengemm_paper(size).expect("valid opengemm size"),
        weight,
    };
    vec![
        gemmini(16, 4),
        gemmini(32, 2),
        gemmini(64, 1),
        opengemm(16, 4),
        opengemm(24, 2),
        opengemm(32, 1),
    ]
}

/// The mixed-platform serving mix for *heterogeneous* pools: both
/// families, with substantial weight on compute-heavy shapes.
///
/// On a pool whose workers are differently provisioned variants of one
/// family (e.g. a base Gemmini next to a turbo one), light shapes cost
/// nearly the same everywhere — configuration writes dominate — while
/// heavy shapes diverge by the variants' compute rates. This mix keeps
/// both regimes populated, so a scheduler must trade resident-state reuse
/// against routing to a differently provisioned accelerator on every
/// decision: exactly where write-count affinity scoring breaks down and
/// cycle-cost routing is needed.
///
/// # Panics
/// Never — the shapes are statically valid.
pub fn mixed_platform_classes() -> Vec<TrafficClass> {
    let gemmini = |size: i64, weight: u32| TrafficClass {
        accelerator: "gemmini".into(),
        spec: MatmulSpec::gemmini_paper(size).expect("valid gemmini size"),
        weight,
    };
    let opengemm = |size: i64, weight: u32| TrafficClass {
        accelerator: "opengemm".into(),
        spec: MatmulSpec::opengemm_paper(size).expect("valid opengemm size"),
        weight,
    };
    vec![
        gemmini(16, 3),
        gemmini(32, 3),
        gemmini(64, 2),
        opengemm(16, 3),
        opengemm(32, 3),
        opengemm(48, 2),
        opengemm(64, 1),
    ]
}

/// A shape-rich serving mix: eight distinct shapes per platform, far more
/// than the workers in a group, with a gently decaying popularity skew.
/// With shapes ≫ workers no static partition keeps every worker warm for
/// its whole mix, so the scheduler's routing term — not elision alone —
/// determines how many configuration writes survive; this is the stream
/// that characterizes the routing/balance crossover.
///
/// # Panics
/// Never — the shapes are statically valid.
pub fn shape_heavy_classes() -> Vec<TrafficClass> {
    let mut classes = Vec::new();
    // sizes ≤ 64 are valid on both platforms (gemmini tiles at
    // min(size, 64); opengemm needs multiples of 8)
    let gemmini_sizes = [8, 16, 24, 32, 40, 48, 56, 64];
    let opengemm_sizes = [8, 16, 24, 32, 40, 48, 56, 64];
    for (i, &size) in gemmini_sizes.iter().enumerate() {
        classes.push(TrafficClass {
            accelerator: "gemmini".into(),
            spec: MatmulSpec::gemmini_paper(size).expect("valid gemmini size"),
            weight: (gemmini_sizes.len() - i) as u32,
        });
    }
    for (i, &size) in opengemm_sizes.iter().enumerate() {
        classes.push(TrafficClass {
            accelerator: "opengemm".into(),
            spec: MatmulSpec::opengemm_paper(size).expect("valid opengemm size"),
            weight: (opengemm_sizes.len() - i) as u32,
        });
    }
    classes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(requests: usize, seed: u64) -> TrafficConfig {
        TrafficConfig {
            classes: mixed_serving_classes(),
            requests,
            mean_gap: 100,
            seed,
        }
    }

    #[test]
    fn stream_is_deterministic() {
        let a = config(500, 7).open_loop_stream().unwrap();
        let b = config(500, 7).open_loop_stream().unwrap();
        assert_eq!(a, b);
        let c = config(500, 8).open_loop_stream().unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn arrivals_are_sorted_and_ids_sequential() {
        let stream = config(1000, 42).open_loop_stream().unwrap();
        assert_eq!(stream.len(), 1000);
        for (i, pair) in stream.windows(2).enumerate() {
            assert!(pair[0].arrival <= pair[1].arrival, "at {i}");
        }
        for (i, r) in stream.iter().enumerate() {
            assert_eq!(r.id, i as u64);
        }
    }

    #[test]
    fn mix_respects_weights_roughly() {
        let stream = config(6000, 1).open_loop_stream().unwrap();
        let count = |accel: &str| stream.iter().filter(|r| r.accelerator == accel).count();
        let gemmini = count("gemmini");
        let opengemm = count("opengemm");
        // equal total weight per platform: each side gets roughly half
        assert!((2400..=3600).contains(&gemmini), "{gemmini}");
        assert_eq!(gemmini + opengemm, 6000);
    }

    #[test]
    fn mean_gap_is_roughly_honoured() {
        let stream = config(4000, 3).open_loop_stream().unwrap();
        let span = stream.last().unwrap().arrival;
        let mean = span as f64 / 4000.0;
        assert!((80.0..120.0).contains(&mean), "{mean}");
    }

    #[test]
    fn zero_weight_mix_is_rejected() {
        let mut cfg = config(10, 0);
        for c in &mut cfg.classes {
            c.weight = 0;
        }
        assert!(cfg.open_loop_stream().is_err());
        assert!(bursty(10, 0, |c| {
            for class in &mut c.classes {
                class.weight = 0;
            }
        })
        .is_err());
        assert!(closed(10, 0, |c| {
            for class in &mut c.classes {
                class.weight = 0;
            }
        })
        .is_err());
    }

    fn bursty(
        requests: usize,
        seed: u64,
        tweak: impl FnOnce(&mut BurstyConfig),
    ) -> Result<Vec<TrafficRequest>, SpecError> {
        let mut cfg = BurstyConfig {
            classes: mixed_serving_classes(),
            requests,
            burst_len: 16,
            burst_gap: 20,
            idle_gap: 2_000,
            seed,
        };
        tweak(&mut cfg);
        cfg.stream()
    }

    fn closed(
        requests: usize,
        seed: u64,
        tweak: impl FnOnce(&mut ClosedLoopConfig),
    ) -> Result<Vec<TrafficRequest>, SpecError> {
        let mut cfg = ClosedLoopConfig {
            classes: mixed_serving_classes(),
            requests,
            clients: 8,
            think_time: 100,
            service_estimate: 200,
            seed,
        };
        tweak(&mut cfg);
        cfg.stream()
    }

    #[test]
    fn bursty_stream_is_deterministic_and_sorted() {
        let a = bursty(800, 9, |_| {}).unwrap();
        let b = bursty(800, 9, |_| {}).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, bursty(800, 10, |_| {}).unwrap());
        for pair in a.windows(2) {
            assert!(pair[0].arrival <= pair[1].arrival);
        }
        for (i, r) in a.iter().enumerate() {
            assert_eq!(r.id, i as u64);
        }
    }

    #[test]
    fn bursty_stream_actually_bursts() {
        // with idle gaps two orders beyond burst gaps, the inter-arrival
        // distribution must be bimodal: mostly tight, with rare long gaps
        let stream = bursty(2_000, 3, |_| {}).unwrap();
        let gaps: Vec<u64> = stream
            .windows(2)
            .map(|p| p[1].arrival - p[0].arrival)
            .collect();
        let tight = gaps.iter().filter(|&&g| g <= 2 * 20).count();
        let idle = gaps.iter().filter(|&&g| g > 1_000).count();
        assert!(tight > gaps.len() * 8 / 10, "tight {tight}/{}", gaps.len());
        let bursts = 2_000 / 16; // ≈ requests / mean burst length
        assert!(idle > bursts / 4, "idle gaps {idle}");
        assert!(idle < bursts * 4, "idle gaps {idle}");
    }

    #[test]
    fn bursty_rejects_zero_burst_len() {
        assert!(bursty(10, 1, |c| c.burst_len = 0).is_err());
    }

    #[test]
    fn closed_loop_stream_is_deterministic_and_self_limiting() {
        let a = closed(1_000, 5, |_| {}).unwrap();
        let b = closed(1_000, 5, |_| {}).unwrap();
        assert_eq!(a, b);
        for pair in a.windows(2) {
            assert!(pair[0].arrival <= pair[1].arrival);
        }
        for (i, r) in a.iter().enumerate() {
            assert_eq!(r.id, i as u64);
        }
        // the population bounds concurrency: no window of clients+1
        // consecutive requests fits inside one service time
        let clients = 8usize;
        for w in a.windows(clients + 1) {
            assert!(w[clients].arrival >= w[0].arrival + 200 - 1);
        }
    }

    #[test]
    fn closed_loop_rejects_zero_clients() {
        assert!(closed(10, 1, |c| c.clients = 0).is_err());
    }

    #[test]
    fn closed_loop_per_class_feedback_matches_uniform_when_constant() {
        // per-class times all equal to the static estimate reproduce
        // stream() byte for byte — the uniform case is a special case
        let cfg = ClosedLoopConfig {
            classes: mixed_serving_classes(),
            requests: 600,
            clients: 8,
            think_time: 100,
            service_estimate: 200,
            seed: 21,
        };
        let uniform = cfg.stream().unwrap();
        let constant = cfg
            .stream_with_service_times(&vec![200; cfg.classes.len()])
            .unwrap();
        assert_eq!(uniform, constant);
    }

    #[test]
    fn closed_loop_per_class_feedback_slows_heavy_clients() {
        // giving one class a much longer service time must stretch the
        // stream: clients stuck on heavy requests issue later, so the
        // final arrival moves out while the stream stays deterministic
        let cfg = ClosedLoopConfig {
            classes: mixed_serving_classes(),
            requests: 800,
            clients: 8,
            think_time: 100,
            service_estimate: 200,
            seed: 22,
        };
        let mut slow = vec![200u64; cfg.classes.len()];
        slow[2] = 5_000; // the heavy gemmini/64x64x64 class
        let a = cfg.stream_with_service_times(&slow).unwrap();
        let b = cfg.stream_with_service_times(&slow).unwrap();
        assert_eq!(a, b);
        let uniform = cfg.stream().unwrap();
        assert!(a.last().unwrap().arrival > uniform.last().unwrap().arrival);
        for pair in a.windows(2) {
            assert!(pair[0].arrival <= pair[1].arrival);
        }
    }

    #[test]
    fn closed_loop_rejects_mismatched_service_times() {
        let cfg = ClosedLoopConfig {
            classes: mixed_serving_classes(),
            requests: 10,
            clients: 2,
            think_time: 100,
            service_estimate: 200,
            seed: 1,
        };
        assert!(cfg.stream_with_service_times(&[200, 200]).is_err());
    }

    #[test]
    fn mixed_platform_mix_spans_both_families_and_weights_heavy_shapes() {
        let classes = mixed_platform_classes();
        assert!(classes.iter().any(|c| c.accelerator == "gemmini"));
        assert!(classes.iter().any(|c| c.accelerator == "opengemm"));
        assert!(classes.iter().all(|c| c.weight > 0));
        // a substantial share of the draw weight sits on shapes whose
        // compute dominates configuration (m >= 48), so differently
        // provisioned variants actually matter
        let total: u32 = classes.iter().map(|c| c.weight).sum();
        let heavy: u32 = classes
            .iter()
            .filter(|c| c.spec.m >= 48)
            .map(|c| c.weight)
            .sum();
        assert!(
            heavy * 4 >= total,
            "heavy weight {heavy} of {total} too small"
        );
        let stream = TrafficConfig {
            classes,
            requests: 500,
            mean_gap: 100,
            seed: 3,
        }
        .open_loop_stream()
        .unwrap();
        assert_eq!(stream.len(), 500);
    }

    #[test]
    fn shape_heavy_mix_has_many_shapes() {
        let classes = shape_heavy_classes();
        assert_eq!(classes.len(), 16);
        let mut keys: Vec<(String, i64, i64, i64)> = classes
            .iter()
            .map(|c| (c.accelerator.clone(), c.spec.m, c.spec.n, c.spec.k))
            .collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 16, "all classes are distinct shapes");
        assert!(classes.iter().all(|c| c.weight > 0));
        // the skew is gentle: the most popular shape is at most 8× the rarest
        let max = classes.iter().map(|c| c.weight).max().unwrap();
        let min = classes.iter().map(|c| c.weight).min().unwrap();
        assert!(max <= 8 * min);
    }
}
