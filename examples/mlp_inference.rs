//! MLP inference offload: a realistic multi-layer scenario.
//!
//! Three back-to-back matmul layers are dispatched to the accelerator in
//! straight-line code. On concurrent-configuration hardware the block-level
//! overlap rewrite (Section 5.5) configures layer N+1 while layer N is
//! still running; deduplication strips the fields the layers share.
//!
//! Run with: `cargo run --example mlp_inference`

use configuration_wall::core::pipeline::{pipeline, OptLevel};
use configuration_wall::core::AccelFilter;
use configuration_wall::prelude::*;
use configuration_wall::workloads::{check_result, fill_inputs, layer_sequence_ir};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let desc = AcceleratorDescriptor::opengemm();

    // a small latency-critical MLP (batch 8): 8x64 -> 64 -> 64 -> 16.
    // Each layer is one accelerator invocation; at this scale the network
    // is squarely configuration bound, the regime the paper targets.
    let specs = [
        MatmulSpec::new((8, 64, 64), (8, 64, 64))?.with_relu()?,
        MatmulSpec::new((8, 64, 64), (8, 64, 64))?.with_relu()?,
        MatmulSpec::new((8, 16, 64), (8, 16, 64))?,
    ];
    let mut layers = Vec::new();
    let mut base_addr = 0x1000;
    for spec in specs {
        let layout = MatmulLayout::at(base_addr, &spec);
        base_addr = layout.end;
        layers.push((spec, layout));
    }

    println!("== 3-layer MLP inference on {} ==\n", desc.name);
    let module = layer_sequence_ir(&desc, &layers);

    let mut cycles = Vec::new();
    for level in [OptLevel::Base, OptLevel::Dedup, OptLevel::All] {
        let mut m = module.clone();
        pipeline(level, AccelFilter::All).run(&mut m)?;
        let prog = compile(&m, "layers", &desc, &[])?;
        let mut machine = Machine::new(
            desc.host.clone(),
            AccelSim::new(desc.accel.clone()),
            base_addr as usize,
        );
        for (i, (spec, layout)) in layers.iter().enumerate() {
            fill_inputs(&mut machine.mem, spec, layout, 100 + i as u64)?;
        }
        let counters = machine.run(&prog, 100_000_000)?;
        for (spec, layout) in &layers {
            check_result(&machine.mem, spec, layout).map_err(std::io::Error::other)?;
        }
        println!(
            "{:>8}: {:6} cycles  ({:3} config instrs, {:4} cycles of config hidden behind execution)  [all 3 layers verified]",
            format!("{level:?}"),
            counters.cycles,
            counters.insts_config,
            counters.overlap_cycles,
        );
        cycles.push(counters.cycles);
    }
    println!(
        "\ndedup alone: x{:.2}; dedup + overlap: x{:.2}",
        cycles[0] as f64 / cycles[1] as f64,
        cycles[0] as f64 / cycles[2] as f64
    );
    println!("the overlap win comes from configuring the next layer during the current one's run");
    Ok(())
}
