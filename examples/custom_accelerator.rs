//! "Your Acc" (Figure 8): bringing a new accelerator to the accfg pipeline.
//!
//! Everything target-specific is one descriptor: field names, bit widths,
//! register mapping, configuration style, and platform cost model. All
//! compiler passes are reused unchanged.
//!
//! The example defines a fictional "STENCIL-9" accelerator with a sluggish
//! MMIO configuration port, shows the roofline predicting it is
//! configuration bound, and measures the accfg passes getting most of that
//! overhead back.
//!
//! Run with: `cargo run --example custom_accelerator`

use configuration_wall::core::pipeline::{pipeline, OptLevel};
use configuration_wall::core::AccelFilter;
use configuration_wall::prelude::*;
use configuration_wall::sim::{regmap, ConfigScheme};
use configuration_wall::targets::{ConfigStyle, FieldSpec};
use configuration_wall::workloads::{check_result, fill_inputs, matmul_ir};

fn stencil9() -> AcceleratorDescriptor {
    let f = |name: &str, bits: u32, reg: u16, meaning: &str| FieldSpec {
        name: name.into(),
        bits,
        reg,
        meaning: meaning.into(),
    };
    AcceleratorDescriptor {
        name: "stencil9".into(),
        accel: AccelParams {
            name: "stencil9".into(),
            scheme: ConfigScheme::Concurrent,
            macs_per_cycle: 64,
            launch_overhead: 20,
            csr_payload_bytes: 4,
            rocc_launch_funct: None,
        },
        host: HostModel {
            name: "mcu".into(),
            alu: 1,
            li: 1,
            mem: 3,
            branch: 2,
            jump: 1,
            csr_write: 8, // slow MMIO port: the configuration wall
            rocc: 8,
            launch: 8,
            poll: 8,
        },
        style: ConfigStyle::Csr,
        fields: vec![
            f("src", 32, regmap::A_ADDR, "Input tile base address"),
            f("coeff", 32, regmap::B_ADDR, "Coefficient table address"),
            f("dst", 32, regmap::C_ADDR, "Output tile base address"),
            f("rows", 16, regmap::M, "Tile rows"),
            f("cols", 16, regmap::N, "Tile columns"),
            f("depth", 16, regmap::K, "Reduction depth"),
            f("src_pitch", 32, regmap::STRIDE_A, "Input row pitch"),
            f("coeff_pitch", 32, regmap::STRIDE_B, "Coefficient row pitch"),
            f("dst_pitch", 32, regmap::STRIDE_C, "Output row pitch"),
            f("mode", 8, regmap::FLAGS, "Border handling / activation"),
        ],
        timing: TimingModel::identity(),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let desc = stencil9();
    println!("== custom accelerator: {} ==", desc.name);
    print!("{}", desc.field_table_markdown());

    // the roofline predicts where this design lands before any simulation:
    // ~10 fields x 4 B per invocation over an 8-cycle MMIO port
    let roofline = ConfigRoofline {
        peak: desc.accel.peak_ops_per_cycle() as f64,
        config_bandwidth: 4.0 / 8.0,
    };
    println!(
        "\nroofline: peak {} ops/cycle, knee at I_OC = {} ops/byte",
        roofline.peak,
        roofline.knee()
    );

    let spec = MatmulSpec::new((32, 32, 32), (8, 8, 32))?;
    let i_oc = spec.total_ops() as f64 / (spec.invocations() as f64 * 16.0 * 4.0);
    println!(
        "workload I_OC = {i_oc:.0} ops/byte -> {:?} bound (predicted {:.0} ops/cycle of {:.0})",
        roofline.bound(i_oc),
        roofline.attainable_concurrent(i_oc),
        roofline.peak,
    );

    // the entire accfg pipeline and lowering are reused unchanged
    let layout = MatmulLayout::at(0x1000, &spec);
    let mut cycles = Vec::new();
    for level in [OptLevel::Base, OptLevel::All] {
        let mut m = matmul_ir(&desc, &spec);
        pipeline(level, AccelFilter::All).run(&mut m)?;
        let prog = compile(
            &m,
            "matmul",
            &desc,
            &[layout.a_addr, layout.b_addr, layout.c_addr],
        )?;
        let mut machine = Machine::new(
            desc.host.clone(),
            AccelSim::new(desc.accel.clone()),
            layout.end as usize,
        );
        fill_inputs(&mut machine.mem, &spec, &layout, 9)?;
        let counters = machine.run(&prog, 100_000_000)?;
        check_result(&machine.mem, &spec, &layout).map_err(std::io::Error::other)?;
        println!(
            "{:>8}: {:6} cycles, {:5.1} ops/cycle  [verified]",
            format!("{level:?}"),
            counters.cycles,
            counters.ops_per_cycle(spec.total_ops() as u64),
        );
        cycles.push(counters.cycles);
    }
    println!(
        "\naccfg speedup on a target it has never seen: x{:.2}",
        cycles[0] as f64 / cycles[1] as f64
    );
    Ok(())
}
