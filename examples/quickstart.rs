//! Quickstart: the full pipeline on one tiled matmul.
//!
//! Build the IR a frontend would emit, inspect it, run the accfg passes,
//! lower to the OpenGeMM-like target, simulate cycle-accurately, check the
//! result, and report the speedup.
//!
//! Run with: `cargo run --example quickstart`

use configuration_wall::prelude::*;
use configuration_wall::workloads::{check_result, fill_inputs};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let desc = AcceleratorDescriptor::opengemm();
    let spec = MatmulSpec::opengemm_paper(32)?;
    let layout = MatmulLayout::at(0x1000, &spec);

    println!(
        "== workload: {}x{}x{} matmul, {} tile invocations ==",
        spec.m,
        spec.n,
        spec.k,
        spec.invocations()
    );

    // step 1 (Figure 8): the frontend emits setup/launch/await clusters
    let module = matmul_ir(&desc, &spec);

    let mut results = Vec::new();
    for level in [OptLevel::Base, OptLevel::All] {
        let mut m = module.clone();
        // steps 2-4: state tracing, dedup, overlap + generic cleanups
        pipeline(level, AccelFilter::All).run(&mut m)?;
        if level == OptLevel::All {
            println!("\n-- optimized IR (deduplicated + software-pipelined) --");
            println!("{}", configuration_wall::ir::print_module(&m));
        }
        // step 5: lowering to the target instruction stream
        let prog = compile(
            &m,
            "matmul",
            &desc,
            &[layout.a_addr, layout.b_addr, layout.c_addr],
        )?;
        // cycle-level co-simulation with functional execution
        let mut machine = Machine::new(
            desc.host.clone(),
            AccelSim::new(desc.accel.clone()),
            layout.end as usize,
        );
        fill_inputs(&mut machine.mem, &spec, &layout, 42)?;
        let counters = machine.run(&prog, 100_000_000)?;
        check_result(&machine.mem, &spec, &layout).map_err(std::io::Error::other)?;
        println!(
            "{:>8}: {:6} cycles, {:5.1} ops/cycle, {:4} config instrs, overlap {:5} cycles  [result verified]",
            format!("{level:?}"),
            counters.cycles,
            counters.ops_per_cycle(spec.total_ops() as u64),
            counters.insts_config,
            counters.overlap_cycles,
        );
        results.push(counters.cycles);
    }
    println!(
        "\nspeedup from accfg optimizations: x{:.2}",
        results[0] as f64 / results[1] as f64
    );
    Ok(())
}
