//! Serving walkthrough: the config-affinity runtime end to end.
//!
//! Generates a deterministic open-loop stream of matmul requests over the
//! Gemmini-like and OpenGeMM-like platforms, serves it under the cold FIFO
//! baseline and under config-affinity dispatch, and reports how much of
//! the configuration wall the serving layer removes.
//!
//! Run with: `cargo run --example serving`

use configuration_wall::prelude::*;
use configuration_wall::runtime::Policy;
use configuration_wall::workloads::mixed_serving_classes;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. a request stream: weighted mix of shapes, open-loop arrivals
    let stream = TrafficConfig {
        classes: mixed_serving_classes(),
        requests: 2_000,
        mean_gap: 150,
        seed: 42,
    }
    .open_loop_stream()?;
    println!(
        "== stream: {} requests over {} shape classes ==",
        stream.len(),
        mixed_serving_classes().len()
    );

    // 2. a pool: two workers per platform, each owning a simulated machine
    let mut runtime = Runtime::new(PoolConfig::new(vec![
        AcceleratorDescriptor::gemmini(),
        AcceleratorDescriptor::opengemm(),
    ]));

    // 3. the baseline: round-robin routing, full reconfiguration per
    //    dispatch — what volatile per-request kernels pin down today
    let fifo = runtime.serve(
        &stream,
        &ServeConfig {
            policy: Policy::Fifo,
            ..ServeConfig::default()
        },
    )?;
    println!("\n-- fifo (cold dispatch) --");
    println!("setup register writes : {}", fifo.metrics.setup_writes);
    println!("config bytes          : {}", fifo.metrics.config_bytes);
    println!(
        "p50 / p99 latency     : {} / {} cycles",
        fifo.metrics.latency.p50, fifo.metrics.latency.p99
    );

    // 4. config-affinity: requests are routed to the worker whose resident
    //    register file needs the fewest new writes, and dispatches skip
    //    everything already resident; batches stop coalescing at the
    //    queue-depth cutoff, and the scheduler's cycle estimates refine
    //    online from each dispatch's measured cost (both on by default)
    let affinity = runtime.serve(
        &stream,
        &ServeConfig {
            policy: Policy::ConfigAffinity,
            max_batch: 8,
            ..ServeConfig::default()
        },
    )?;
    println!("\n-- config-affinity + batching --");
    println!("setup register writes : {}", affinity.metrics.setup_writes);
    println!("config bytes          : {}", affinity.metrics.config_bytes);
    println!(
        "p50 / p99 latency     : {} / {} cycles",
        affinity.metrics.latency.p50, affinity.metrics.latency.p99
    );
    println!(
        "batched requests      : {}",
        affinity.metrics.batched_requests
    );
    println!(
        "module cache          : {} modules, {:.1}% hit rate",
        affinity.metrics.cache.misses + fifo.metrics.cache.misses,
        100.0 * affinity.metrics.cache.hit_rate()
    );
    println!(
        "cycle prediction MAE  : {:.1} static anchors -> {:.2} with online EWMA",
        affinity.metrics.prediction.anchor_mae(),
        affinity.metrics.prediction.ewma_mae()
    );

    // 5. every request was functionally checked against the reference
    assert_eq!(fifo.metrics.check_failures, 0);
    assert_eq!(affinity.metrics.check_failures, 0);
    println!(
        "\nconfig-affinity removed {:.1}% of setup register writes ({} → {})",
        100.0 * affinity.metrics.write_savings_vs(&fifo.metrics),
        fifo.metrics.setup_writes,
        affinity.metrics.setup_writes
    );
    Ok(())
}
