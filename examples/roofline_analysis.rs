//! The configuration roofline as an analysis tool (Section 4).
//!
//! Reproduces the Section 4.6 worked example for Gemmini, classifies a few
//! workloads against the roofline, and renders the Figure 4 plot.
//!
//! Run with: `cargo run --example roofline_analysis`

use configuration_wall::prelude::*;
use configuration_wall::roofline::{effective_config_bandwidth, render, Bound, PlotConfig, Series};

fn main() {
    // Gemmini, Section 4.6: 16 B per RoCC command, 3 instructions at 3 CPI
    let roofline = ConfigRoofline {
        peak: 512.0,
        config_bandwidth: 16.0 / 9.0,
    };
    println!(
        "Gemmini configuration roofline: knee at I_OC = {:.0} ops/byte\n",
        roofline.knee()
    );

    // classify matmul workloads of growing size (one 64-wide strip each)
    let mut points = Vec::new();
    for size in [16i64, 32, 64, 128, 256] {
        let ops = 2.0 * 64.0 * 64.0 * size as f64;
        let config_bytes = 2560.0; // one full loop_ws sequence
        let i_oc = ops / config_bytes;
        let bound = roofline.bound(i_oc);
        let attainable = roofline.attainable_sequential(i_oc);
        println!(
            "strip of k={size:4}: I_OC = {i_oc:7.1} ops/byte -> {bound:?} bound, attainable {attainable:6.1} ops/cycle ({:4.1} % of peak)",
            100.0 * attainable / roofline.peak
        );
        points.push((i_oc, attainable));
        if bound == Bound::Configuration {
            println!(
                "{:15}^ hit the configuration wall: a faster array would not help",
                ""
            );
        }
    }

    // the effective bandwidth (Eq. 4) with the paper's traced counts
    let bw_eff = effective_config_bandwidth(2560.0, 775.0 * 3.0, 160.0 * 3.0);
    println!("\nwith parameter-calculation time included (Eq. 4): BW_eff = {bw_eff:.3} B/cycle");
    println!(
        "64x64x64 utilization drops from {:.1} % to {:.1} % (paper: 41.49 % -> 26.78 %)",
        100.0 * roofline.utilization_sequential(204.8),
        100.0
            * ConfigRoofline {
                peak: 512.0,
                config_bandwidth: bw_eff
            }
            .utilization_sequential(204.8),
    );

    let seq = |x: f64| roofline.attainable_sequential(x);
    let conc = |x: f64| roofline.attainable_concurrent(x);
    let series = [Series {
        label: "matmul strips".into(),
        marker: 'o',
        points,
    }];
    println!(
        "\n{}",
        render(
            &PlotConfig {
                x_range: (16.0, 16384.0),
                y_range: (8.0, 1024.0),
                ..Default::default()
            },
            &[
                ("sequential (Eq. 3)", '.', &seq),
                ("concurrent (Eq. 2)", '-', &conc)
            ],
            &series,
        )
    );
}
